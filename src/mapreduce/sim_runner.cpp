#include "mapreduce/sim_runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/latch.hpp"

namespace vhadoop::mapreduce {

SimulatedJobRunner::SimulatedJobRunner(virt::Cloud& cloud, hdfs::HdfsCluster& hdfs,
                                       HadoopConfig config, std::vector<virt::VmId> workers)
    : cloud_(cloud),
      hdfs_(hdfs),
      config_(config),
      scheduler_(make_scheduler(config_)),
      workers_(std::move(workers)),
      m_map_attempts_(cloud.engine().metrics().counter("mr.map_attempts")),
      m_reduce_attempts_(cloud.engine().metrics().counter("mr.reduce_attempts")),
      m_speculative_launched_(cloud.engine().metrics().counter("mr.speculative_launched")),
      m_speculative_wins_(cloud.engine().metrics().counter("mr.speculative_wins")),
      m_reexecutions_(cloud.engine().metrics().counter("mr.reexecutions")),
      m_heartbeats_(cloud.engine().metrics().counter("mr.heartbeats")),
      m_jobs_completed_(cloud.engine().metrics().counter("mr.jobs_completed")),
      m_jobs_failed_(cloud.engine().metrics().counter("mr.jobs_failed")),
      m_shuffle_bytes_(cloud.engine().metrics().counter("mr.shuffle_bytes")),
      m_locality_node_(cloud.engine().metrics().counter("mr.locality.node")),
      m_locality_rack_(cloud.engine().metrics().counter("mr.locality.rack")),
      m_locality_off_(cloud.engine().metrics().counter("mr.locality.off")),
      g_jobs_running_(cloud.engine().metrics().gauge("mr.jobs_running")),
      h_map_seconds_(cloud.engine().metrics().histogram(
          "mr.map_seconds", obs::Histogram::exponential_buckets(1.0, 2.0, 12))),
      h_reduce_seconds_(cloud.engine().metrics().histogram(
          "mr.reduce_seconds", obs::Histogram::exponential_buckets(1.0, 2.0, 12))),
      h_job_seconds_(cloud.engine().metrics().histogram(
          "mr.job_seconds", obs::Histogram::exponential_buckets(4.0, 2.0, 14))),
      h_queue_wait_seconds_(cloud.engine().metrics().histogram(
          "mr.job_queue_wait_seconds", obs::Histogram::exponential_buckets(0.5, 2.0, 14))),
      h_map_slot_share_(cloud.engine().metrics().histogram(
          "mr.map_slot_share", obs::Histogram::linear_buckets(1.0, 10))) {
  if (workers_.empty()) throw std::invalid_argument("SimulatedJobRunner: no workers");
  trackers_.reserve(workers_.size());
  for (virt::VmId vm : workers_) {
    trackers_.push_back(
        {vm, config_.map_slots_per_worker, config_.reduce_slots_per_worker, 0, true});
    trackers_.back().map_slot_busy.assign(config_.map_slots_per_worker, false);
    trackers_.back().reduce_slot_busy.assign(config_.reduce_slots_per_worker, false);
  }
  heartbeat_events_.resize(trackers_.size());
  tracer().set_process_name(kJobTrackerPid, "jobtracker");
  cloud_.on_crash([this](virt::VmId vm) { on_vm_crash(vm); });
}

int SimulatedJobRunner::acquire_slot(std::vector<bool>& busy, int base) {
  for (std::size_t k = 0; k < busy.size(); ++k) {
    if (!busy[k]) {
      busy[k] = true;
      return base + static_cast<int>(k);
    }
  }
  busy.push_back(true);
  return base + static_cast<int>(busy.size()) - 1;
}

void SimulatedJobRunner::release_slot(std::size_t tracker_idx, int tid) {
  if (tid < 0) return;
  Tracker& tr = trackers_[tracker_idx];
  const int reduce_base = config_.map_slots_per_worker;
  if (tid < reduce_base) {
    if (static_cast<std::size_t>(tid) < tr.map_slot_busy.size()) tr.map_slot_busy[tid] = false;
  } else {
    const std::size_t k = static_cast<std::size_t>(tid - reduce_base);
    if (k < tr.reduce_slot_busy.size()) tr.reduce_slot_busy[k] = false;
  }
  tracer().end_all(static_cast<int>(tr.vm), tid);
}

obs::Counter* SimulatedJobRunner::queue_counter(const ActiveJob& job, const char* what) {
  return cloud_.engine().metrics().counter("mr.queue." + job.spec.queue + "." + what);
}

obs::Histogram* SimulatedJobRunner::queue_histogram(const ActiveJob& job, const char* what) {
  return cloud_.engine().metrics().histogram(
      "mr.queue." + job.spec.queue + "." + what,
      obs::Histogram::exponential_buckets(4.0, 2.0, 14));
}

SimulatedJobRunner::~SimulatedJobRunner() {
  for (auto& ev : heartbeat_events_) {
    if (ev.valid()) cloud_.engine().cancel(ev);
  }
}

void SimulatedJobRunner::start_heartbeats() {
  // Staggered heartbeats: tracker i first beats at i/N of a period. Only
  // lapsed timers are re-armed, so duplicates cannot accumulate.
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    if (heartbeat_events_[i].valid() || !trackers_[i].alive) continue;
    const double phase = config_.heartbeat_seconds * static_cast<double>(i) /
                         static_cast<double>(trackers_.size());
    heartbeat_events_[i] = cloud_.engine().schedule_in(phase, [this, i] { heartbeat(i); });
  }
}

void SimulatedJobRunner::add_tracker(virt::VmId vm) {
  for (const Tracker& t : trackers_) {
    if (t.vm == vm) return;
  }
  workers_.push_back(vm);
  trackers_.push_back(
      {vm, config_.map_slots_per_worker, config_.reduce_slots_per_worker, 0, true});
  trackers_.back().map_slot_busy.assign(config_.map_slots_per_worker, false);
  trackers_.back().reduce_slot_busy.assign(config_.reduce_slots_per_worker, false);
  heartbeat_events_.push_back({});
  if (!jobs_.empty()) start_heartbeats();
}

int SimulatedJobRunner::running_tasks(virt::VmId vm) const {
  for (const Tracker& t : trackers_) {
    if (t.vm == vm) return t.running;
  }
  return 0;
}

SimulatedJobRunner::ActiveJob* SimulatedJobRunner::find_job(std::uint64_t id) {
  for (auto& job : jobs_) {
    if (job->id == id) return job.get();
  }
  return nullptr;
}

void SimulatedJobRunner::erase_job(std::uint64_t id) {
  jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                             [id](const std::unique_ptr<ActiveJob>& j) { return j->id == id; }),
              jobs_.end());
  g_jobs_running_->set(static_cast<double>(jobs_.size()));
}

void SimulatedJobRunner::submit(SimJobSpec spec, std::function<void(const JobTimeline&)> on_done) {
  if (spec.maps.empty()) throw std::invalid_argument("SimJobSpec: no map tasks");
  // `!(x >= 0)` also catches NaN, which every ordered comparison rejects.
  if (!(spec.deadline_seconds >= 0.0) || !std::isfinite(spec.deadline_seconds)) {
    throw std::invalid_argument("SimJobSpec: deadline_seconds must be finite and >= 0 (0 = none), got " +
                                std::to_string(spec.deadline_seconds));
  }
  if (spec.priority < 0 || spec.priority > 9) {
    throw std::invalid_argument("SimJobSpec: priority must be in [0, 9], got " +
                                std::to_string(spec.priority));
  }
  if (!spec.shuffle_matrix.empty()) {
    if (spec.shuffle_matrix.size() != spec.maps.size() ||
        (!spec.reduces.empty() && spec.shuffle_matrix[0].size() != spec.reduces.size())) {
      throw std::invalid_argument("SimJobSpec: shuffle matrix shape mismatch");
    }
  }
  auto job = std::make_unique<ActiveJob>();
  job->id = ++next_job_id_;
  job->submit_index = submit_counter_++;
  job->spec = std::move(spec);
  job->on_done = std::move(on_done);
  job->timeline.name = job->spec.name;
  job->timeline.submitted = cloud_.engine().now();
  job->timeline.maps.resize(job->spec.maps.size());
  job->timeline.reduces.resize(job->spec.reduces.size());
  job->maps.assign(job->spec.maps.size(), {});
  job->reduces.assign(job->spec.reduces.size(), {});
  for (auto& rs : job->reduces) rs.fetched.assign(job->spec.maps.size(), false);
  for (std::size_t m = 0; m < job->spec.maps.size(); ++m) job->pending_maps.push_back(m);
  if (tracer().enabled()) {
    tracer().instant(kJobTrackerPid, 0, "submit:" + job->spec.name, "job");
    // Job root span on its own JobTracker lane: covers [submitted,
    // finished] and anchors the "dispatch" cause edges of every task
    // attempt. The critical-path analyzer keys on cat "job".
    tracer().set_thread_name(kJobTrackerPid, static_cast<int>(job->id),
                             "job:" + job->spec.name);
    job->root_span = tracer().begin(kJobTrackerPid, static_cast<int>(job->id),
                                    "job:" + job->spec.name, "job", job->id);
  }
  jobs_.push_back(std::move(job));
  g_jobs_running_->set(static_cast<double>(jobs_.size()));
  start_heartbeats();
}

std::function<void()> SimulatedJobRunner::map_guard(std::uint64_t id, std::size_t m,
                                                    int attempt, JobFn fn) {
  return [this, id, m, attempt, fn = std::move(fn)] {
    ActiveJob* job = find_job(id);
    if (job && job->maps[m].attempt == attempt) fn(*job);
  };
}

std::function<void()> SimulatedJobRunner::reduce_guard(std::uint64_t id, std::size_t r,
                                                       int attempt, JobFn fn) {
  return [this, id, r, attempt, fn = std::move(fn)] {
    ActiveJob* job = find_job(id);
    if (job && job->reduces[r].attempt == attempt) fn(*job);
  };
}

void SimulatedJobRunner::heartbeat(std::size_t i) {
  if (!trackers_[i].alive) {
    heartbeat_events_[i] = {};
    return;
  }
  if (jobs_.empty()) {
    // Idle: let this timer lapse so a finished simulation can drain its
    // event queue. submit() re-arms lapsed timers.
    heartbeat_events_[i] = {};
    return;
  }
  heartbeat_events_[i] =
      cloud_.engine().schedule_in(config_.heartbeat_seconds, [this, i] { heartbeat(i); });
  m_heartbeats_->inc();
  // One map and one reduce may be handed out per heartbeat (0.20 protocol).
  maybe_assign_map(i);
  maybe_assign_reduce(i);
}

void SimulatedJobRunner::out_of_band_heartbeat(std::size_t i) {
  if (!config_.out_of_band_heartbeats) return;
  // Hadoop 0.20 TaskTrackers heartbeat immediately after a task completes
  // so freed slots refill without waiting out the period.
  cloud_.engine().schedule_in(0.1, [this, i] {
    if (jobs_.empty() || !trackers_[i].alive) return;
    maybe_assign_map(i);
    maybe_assign_reduce(i);
  });
}

std::size_t SimulatedJobRunner::schedulable_tasks(const ActiveJob& job, SlotKind kind) const {
  if (kind == SlotKind::Map) return job.pending_maps.size();
  std::size_t n = job.retry_reduces.size();
  if (job.next_reduce < job.spec.reduces.size()) {
    const double done_frac = job.spec.maps.empty()
                                 ? 1.0
                                 : static_cast<double>(job.maps_done) /
                                       static_cast<double>(job.spec.maps.size());
    // Reducers slow-start once enough maps have finished; a tiny threshold
    // (the default) launches them immediately so shuffle overlaps the map
    // waves, as Hadoop does.
    if (!(config_.reduce_slowstart > 0.05 && done_frac < config_.reduce_slowstart)) {
      n += job.spec.reduces.size() - job.next_reduce;
    }
  }
  return n;
}

SimulatedJobRunner::MapLocality SimulatedJobRunner::job_map_locality(const ActiveJob& job,
                                                                     virt::VmId vm) const {
  MapLocality loc;
  for (std::size_t m : job.pending_maps) {
    const auto& mt = job.spec.maps[m];
    if (mt.input_path.empty()) {  // no locality to honour
      loc.node = true;
      return loc;
    }
    const auto& block =
        hdfs_.blocks(mt.input_path)[static_cast<std::size_t>(std::max(0, mt.block_index))];
    switch (hdfs_.locality_tier(block, vm)) {
      case hdfs::LocalityTier::Node:
        loc.node = true;
        return loc;
      case hdfs::LocalityTier::Rack:
        loc.rack = true;
        break;
      case hdfs::LocalityTier::Off:
        break;
    }
  }
  return loc;
}

int SimulatedJobRunner::total_live_slots(SlotKind kind) const {
  int alive = 0;
  for (const Tracker& t : trackers_) alive += t.alive ? 1 : 0;
  return alive *
         (kind == SlotKind::Map ? config_.map_slots_per_worker : config_.reduce_slots_per_worker);
}

std::size_t SimulatedJobRunner::pick_job(SlotKind kind, std::size_t tracker_idx) {
  const bool locality = kind == SlotKind::Map && scheduler_->wants_locality();
  const virt::VmId vm = trackers_[tracker_idx].vm;
  const double now = cloud_.engine().now();
  std::vector<JobSchedView> views;
  views.reserve(jobs_.size());
  for (auto& jp : jobs_) {
    ActiveJob& job = *jp;
    JobSchedView v;
    v.id = job.id;
    v.submit_index = job.submit_index;
    v.queue = job.spec.queue;
    v.user = job.spec.user;
    v.running = kind == SlotKind::Map ? job.running_maps : job.running_reduces;
    v.pending = schedulable_tasks(job, kind);
    v.priority = job.spec.priority;
    v.deadline = job.spec.deadline_seconds > 0.0
                     ? job.timeline.submitted + job.spec.deadline_seconds
                     : sim::kNever;
    v.age = now - job.timeline.submitted;
    v.started = job.started;
    if (locality && v.pending > 0) {
      const MapLocality loc = job_map_locality(job, vm);
      v.local_available = loc.node;
      // On a single-rack cluster every replica is "rack-local", so the
      // two-tier delay walk must collapse to the pre-topology behaviour.
      v.rack_local_available = cloud_.rack_count() <= 1 ? true : (loc.node || loc.rack);
      if (v.local_available) {
        job.locality_wait_since = -1.0;
      } else {
        // Delay scheduling: start (or continue) the clock on how long this
        // job has been passed over for lack of a local block.
        if (job.locality_wait_since < 0.0) job.locality_wait_since = now;
        v.locality_wait = now - job.locality_wait_since;
      }
    }
    views.push_back(std::move(v));
  }
  return scheduler_->pick(views, kind, total_live_slots(kind));
}

void SimulatedJobRunner::note_job_started(ActiveJob& job) {
  if (job.started) return;
  job.started = true;
  job.timeline.first_task_at = cloud_.engine().now();
  h_queue_wait_seconds_->observe(job.timeline.queue_wait());
}

void SimulatedJobRunner::maybe_assign_map(std::size_t i) {
  Tracker& tr = trackers_[i];
  // A silently hung guest cannot answer the heartbeat RPC, so the
  // JobTracker never hands it work (its in-flight tasks die by timeout).
  if (!tr.alive || !cloud_.responsive(tr.vm) || tr.free_map_slots <= 0) return;
  const std::size_t j = pick_job(SlotKind::Map, i);
  if (j == Scheduler::kNone) {
    maybe_speculate(i);
    return;
  }
  ActiveJob& job = *jobs_[j];

  // Locality-aware pick: first pending map whose block has a replica on
  // this tracker's VM; failing that (on a multi-rack cluster) the first map
  // with a replica in this VM's rack; otherwise the head of the queue.
  std::size_t chosen_pos = 0;
  std::size_t rack_pos = kNone;
  bool found_node_local = false;
  const bool multi_rack = cloud_.rack_count() > 1;
  for (std::size_t pos = 0; pos < job.pending_maps.size(); ++pos) {
    const auto& mt = job.spec.maps[job.pending_maps[pos]];
    if (mt.input_path.empty()) continue;
    const auto& block =
        hdfs_.blocks(mt.input_path)[static_cast<std::size_t>(std::max(0, mt.block_index))];
    if (hdfs_.is_local(block, tr.vm)) {
      chosen_pos = pos;
      found_node_local = true;
      break;
    }
    if (multi_rack && rack_pos == kNone &&
        hdfs_.locality_tier(block, tr.vm) == hdfs::LocalityTier::Rack) {
      rack_pos = pos;
    }
  }
  if (!found_node_local && rack_pos != kNone) chosen_pos = rack_pos;
  const std::size_t m = job.pending_maps[chosen_pos];
  job.pending_maps.erase(job.pending_maps.begin() + static_cast<std::ptrdiff_t>(chosen_pos));
  --tr.free_map_slots;
  ++tr.running;
  ++job.running_maps;
  job.locality_wait_since = -1.0;  // granted a slot: the delay clock resets
  h_map_slot_share_->observe(static_cast<double>(job.running_maps));
  note_job_started(job);
  job.maps[m].tracker = i;
  job.maps[m].tid[0] = acquire_slot(tr.map_slot_busy, 0);
  job.timeline.maps[m].vm = tr.vm;
  job.timeline.maps[m].assigned = cloud_.engine().now();
  arm_map_watchdog(job, m, i, job.maps[m].attempt, 0);
  run_map(job, m, i, job.maps[m].attempt, 0, job.maps[m].tid[0]);
}

void SimulatedJobRunner::maybe_speculate(std::size_t i) {
  if (!config_.speculative_execution) return;
  for (auto& jp : jobs_) {
    ActiveJob& job = *jp;
    if (job.maps_done == 0) continue;

    // Mean wall-clock of this job's completed maps.
    double mean = 0.0;
    std::size_t n = 0;
    for (std::size_t m = 0; m < job.maps.size(); ++m) {
      if (job.maps[m].done) {
        mean += job.timeline.maps[m].finished - job.timeline.maps[m].assigned;
        ++n;
      }
    }
    if (n == 0) continue;
    mean /= static_cast<double>(n);

    for (std::size_t m = 0; m < job.maps.size(); ++m) {
      MapState& ms = job.maps[m];
      if (ms.done || ms.tracker == kNone || ms.spec_tracker != kNone || ms.tracker == i) continue;
      const double running_for = cloud_.engine().now() - job.timeline.maps[m].assigned;
      if (running_for < config_.speculative_slowdown * mean) continue;
      Tracker& tr = trackers_[i];
      --tr.free_map_slots;
      ++tr.running;
      ++job.running_maps;
      ms.spec_tracker = i;
      ms.tid[1] = acquire_slot(tr.map_slot_busy, 0);
      ++reexecuted_maps_;
      m_reexecutions_->inc();
      m_speculative_launched_->inc();
      // The duplicate races the original under the same attempt number; the
      // first finisher wins and the loser's chain is invalidated.
      arm_map_watchdog(job, m, i, ms.attempt, 1);
      run_map(job, m, i, ms.attempt, 1, ms.tid[1]);
      return;  // at most one speculative launch per heartbeat
    }
  }
}

void SimulatedJobRunner::maybe_assign_reduce(std::size_t i) {
  Tracker& tr = trackers_[i];
  if (!tr.alive || !cloud_.responsive(tr.vm) || tr.free_reduce_slots <= 0) return;
  const std::size_t j = pick_job(SlotKind::Reduce, i);
  if (j == Scheduler::kNone) return;
  ActiveJob& job = *jobs_[j];
  std::size_t r;
  if (!job.retry_reduces.empty()) {
    r = job.retry_reduces.front();
    job.retry_reduces.pop_front();
  } else {
    r = job.next_reduce;
    ++job.next_reduce;
  }
  --tr.free_reduce_slots;
  ++tr.running;
  ++job.running_reduces;
  note_job_started(job);
  ReduceState& rs = job.reduces[r];
  rs.assigned = true;
  rs.tracker = i;
  rs.tid = acquire_slot(tr.reduce_slot_busy, config_.map_slots_per_worker);
  rs.last_progress = cloud_.engine().now();
  job.timeline.reduces[r].vm = tr.vm;
  job.timeline.reduces[r].assigned = cloud_.engine().now();
  arm_reduce_watchdog(job, r, rs.attempt);
  run_reduce(job, r, i, rs.attempt, rs.tid);
}

void SimulatedJobRunner::run_map(ActiveJob& job0, std::size_t m, std::size_t i, int attempt,
                                 int slot, int tid) {
  const auto id = job0.id;
  const virt::VmId vm = trackers_[i].vm;
  auto G = [this, id, m, attempt](JobFn fn) { return map_guard(id, m, attempt, std::move(fn)); };
  m_map_attempts_->inc();
  const int pid = static_cast<int>(vm);
  if (tracer().enabled()) {
    const obs::SpanId task_span =
        tracer().begin(pid, tid,
                       "map-" + std::to_string(m) +
                           (attempt > 0 ? "/a" + std::to_string(attempt) : ""),
                       "map", id);
    job0.maps[m].span[slot] = task_span;
    tracer().cause(job0.root_span, task_span, "dispatch");
  }

  // 1. child JVM spawn: fixed exec latency plus guest CPU work (the CPU
  // part is what host oversubscription stretches).
  cloud_.engine().schedule_in(config_.task_start_latency, G([this, m, i, vm, pid, tid,
                                                             G](ActiveJob&) {
  tracer().begin(pid, tid, "jvm_spawn", "map");
  cloud_.run_compute(vm, config_.task_start_cpu_seconds, G([this, m, i, vm, pid, tid,
                                                            G](ActiveJob& job) {
    tracer().end(pid, tid);  // jvm_spawn
    // 2. job localization: stream jar + conf from a datanode
    // (DistributedCache — cold once per VM per job, cached afterwards).
    tracer().begin(pid, tid, "localize", "map");
    localize(job, vm, G([this, m, i, vm, pid, tid, G](ActiveJob& job2) {
      tracer().end(pid, tid);  // localize
      auto& timing = job2.timeline.maps[m];
      timing.started = cloud_.engine().now();
      const auto& mt = job2.spec.maps[m];
      auto after_read = G([this, m, i, vm, pid, tid, G](ActiveJob& job3) {
        tracer().end(pid, tid);  // read
        // 4. user map function.
        tracer().begin(pid, tid, "compute", "map");
        cloud_.run_compute(vm, job3.spec.maps[m].cpu_seconds, G([this, m, i, vm, pid, tid,
                                                                G](ActiveJob& job4) {
          tracer().end(pid, tid);  // compute
          // 5. materialize map output. The spill/commit span (and the
          // enclosing map span) are closed by the slot release in
          // finish_map via end_all.
          const auto& mt3 = job4.spec.maps[m];
          auto done = G([this, m, i](ActiveJob& job5) { finish_map(job5, m, i); });
          if (mt3.output_bytes <= 0.0) {
            done();
          } else if (job4.spec.map_output_to_hdfs) {
            const obs::SpanId commit_span = tracer().begin(pid, tid, "commit", "map");
            const int attempt_now = job4.maps[m].attempt;
            const std::string path =
                job4.spec.output_path + "/map-" + std::to_string(m) +
                (attempt_now > 0 ? "-a" + std::to_string(attempt_now) : "");
            if (hdfs_.exists(path)) {
              // A speculative duplicate races the original under the same
              // attempt number; whichever commits second finds the file in
              // place and its commit is a no-op rename (OutputCommitter).
              done();
            } else {
              // The HDFS write pipeline cause-links its root span to us.
              obs::AmbientCause amb(tracer(), commit_span);
              hdfs_.write_file(path, mt3.output_bytes, vm, std::move(done),
                               config_.output_replication);
            }
          } else {
            tracer().begin(pid, tid, "spill", "map");
            // Spill to local disk; one extra merge pass if the output
            // exceeds io.sort.mb. The final spill stays hot in the page
            // cache for the imminent shuffle fetches; the intermediate
            // pass is forced writeback.
            const bool extra = mt3.output_bytes > config_.io_sort_bytes;
            const std::string key = map_output_key(job4, m);
            auto write_final = [this, vm, mt3, key, done = std::move(done)]() mutable {
              cloud_.scratch_write(vm, mt3.output_bytes, std::move(done), key);
            };
            if (extra) {
              cloud_.disk_write(vm, mt3.output_bytes, [this, vm, mt3, write_final]() mutable {
                cloud_.disk_read(vm, mt3.output_bytes, std::move(write_final));
              });
            } else {
              write_final();
            }
          }
        }));
      });
      // 3. input: HDFS block or whole file (locality recorded) or raw
      // local-disk bytes.
      const obs::SpanId read_span = tracer().begin(pid, tid, "read", "map");
      // Flows the read starts synchronously link back to the read span.
      obs::AmbientCause amb(tracer(), read_span);
      if (!mt.input_path.empty()) {
        const auto& block =
            hdfs_.blocks(mt.input_path)[static_cast<std::size_t>(std::max(0, mt.block_index))];
        timing.data_local = hdfs_.is_local(block, vm);
        switch (hdfs_.locality_tier(block, vm)) {
          case hdfs::LocalityTier::Node: m_locality_node_->inc(); break;
          case hdfs::LocalityTier::Rack: m_locality_rack_->inc(); break;
          case hdfs::LocalityTier::Off: m_locality_off_->inc(); break;
        }
        if (mt.block_index < 0) {
          hdfs_.read_file(mt.input_path, vm, std::move(after_read));
        } else {
          hdfs_.read_block(mt.input_path, mt.block_index, vm, std::move(after_read));
        }
      } else if (mt.input_bytes > 0.0) {
        cloud_.disk_read(vm, mt.input_bytes, std::move(after_read));
      } else {
        after_read();
      }
    }));
  }));
  }));
}

void SimulatedJobRunner::localize(ActiveJob& job, virt::VmId vm, std::function<void()> next) {
  // job.jar/job.xml live in HDFS: localization streams them from a live
  // datanode (page-cache-hot there after the first fetch), so in a
  // cross-domain layout roughly half the fetches cross the GbE wire. The
  // local copy is cached, making later tasks on the same VM free.
  const std::string key = "job" + std::to_string(job.id) + "-jar";
  if (cloud_.cached(vm, key)) {
    next();
    return;
  }
  virt::VmId source = vm;
  const std::size_t start = (job.id * 31 + vm * 17) % workers_.size();
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    virt::VmId candidate = workers_[(start + k) % workers_.size()];
    if (cloud_.alive(candidate)) {
      source = candidate;
      break;
    }
  }
  if (source == vm) {
    cloud_.disk_read(vm, config_.task_localization_bytes, std::move(next), 1.0, key);
    return;
  }
  auto latch = sim::Latch::create(2, std::move(next));
  cloud_.disk_read(source, config_.task_localization_bytes, [latch] { latch->arrive(); }, 1.0,
                   key + "-src");
  cloud_.vm_transfer(source, vm, config_.task_localization_bytes, [this, vm, key, latch] {
    cloud_.cache_insert(vm, key, config_.task_localization_bytes);
    latch->arrive();
  });
}

void SimulatedJobRunner::finish_map(ActiveJob& job, std::size_t m, std::size_t i) {
  MapState& ms = job.maps[m];
  if (ms.done) return;  // a speculative loser crossing the line
  if (ms.tracker != i && ms.spec_tracker != i) {
    // This attempt was already written off (timeout freed its slot); a
    // late completion must not double-release.
    return;
  }
  ms.done = true;
  ms.output_vm = trackers_[i].vm;
  cancel_map_watchdogs(job, m);
  if (ms.spec_tracker == i) m_speculative_wins_->inc();

  // Free the winner's slot, and kill the losing attempt if one is racing.
  auto release = [this, &job](std::size_t t, int tid) {
    release_slot(t, tid);
    ++trackers_[t].free_map_slots;
    --trackers_[t].running;
    --job.running_maps;
    out_of_band_heartbeat(t);
  };
  const int my_tid = (ms.tracker == i) ? ms.tid[0] : ms.tid[1];
  const int other_tid = (ms.tracker == i) ? ms.tid[1] : ms.tid[0];
  // The winner's span becomes the source of this map's shuffle edges.
  ms.done_span = (ms.tracker == i) ? ms.span[0] : ms.span[1];
  release(i, my_tid);
  const std::size_t other = (ms.tracker == i) ? ms.spec_tracker : ms.tracker;
  if (other != kNone && other != i) {
    ++ms.attempt;  // invalidates the loser's continuation chain
    if (trackers_[other].alive) release(other, other_tid);
  }
  ms.tracker = i;
  ms.spec_tracker = kNone;
  ms.tid[0] = ms.tid[1] = -1;
  ms.span[0] = ms.span[1] = 0;

  job.timeline.maps[m].vm = trackers_[i].vm;
  job.timeline.maps[m].finished = cloud_.engine().now();
  h_map_seconds_->observe(job.timeline.maps[m].finished - job.timeline.maps[m].assigned);
  ++job.maps_done;
  // Feed every ready reducer that does not have this partition yet.
  for (std::size_t r = 0; r < job.reduces.size(); ++r) {
    if (job.reduces[r].assigned && job.reduces[r].ready) start_fetch(job, m, r);
  }
  maybe_finish_job(job);
}

void SimulatedJobRunner::run_reduce(ActiveJob& job0, std::size_t r, std::size_t i, int attempt,
                                    int tid) {
  const auto id = job0.id;
  const virt::VmId vm = trackers_[i].vm;
  auto G = [this, id, r, attempt](JobFn fn) { return reduce_guard(id, r, attempt, std::move(fn)); };
  m_reduce_attempts_->inc();
  const int pid = static_cast<int>(vm);
  if (tracer().enabled()) {
    const obs::SpanId task_span =
        tracer().begin(pid, tid,
                       "reduce-" + std::to_string(r) +
                           (attempt > 0 ? "/a" + std::to_string(attempt) : ""),
                       "reduce", id);
    job0.reduces[r].span = task_span;
    tracer().cause(job0.root_span, task_span, "dispatch");
  }
  cloud_.engine().schedule_in(config_.task_start_latency, G([this, r, vm, pid, tid,
                                                             G](ActiveJob&) {
  tracer().begin(pid, tid, "jvm_spawn", "reduce");
  cloud_.run_compute(vm, config_.task_start_cpu_seconds, G([this, r, vm, pid, tid,
                                                            G](ActiveJob& job) {
    tracer().end(pid, tid);  // jvm_spawn
    tracer().begin(pid, tid, "localize", "reduce");
    localize(job, vm, G([this, r, pid, tid](ActiveJob& job2) {
      tracer().end(pid, tid);  // localize
      // The shuffle span runs from fetch-readiness to the last partition's
      // arrival; maybe_merge closes it. It is the `to` of the "shuffle"
      // cause edges recorded as partitions land.
      job2.reduces[r].shuffle_span = tracer().begin(pid, tid, "shuffle", "reduce");
      job2.timeline.reduces[r].started = cloud_.engine().now();
      job2.reduces[r].ready = true;
      job2.reduces[r].last_progress = cloud_.engine().now();
      // Fetch everything already finished; the rest arrives via finish_map.
      for (std::size_t m = 0; m < job2.maps.size(); ++m) {
        if (job2.maps[m].done) start_fetch(job2, m, r);
      }
      maybe_merge(job2, r);  // degenerate: zero maps already fetched
    }));
  }));
  }));
}

void SimulatedJobRunner::mark_map_lost(ActiveJob& job, std::size_t m) {
  MapState& ms = job.maps[m];
  if (!ms.done) return;  // already re-executing
  ms.done = false;
  --job.maps_done;
  ++ms.attempt;
  ms.tracker = kNone;
  ms.spec_tracker = kNone;
  ms.done_span = 0;  // the re-run's winner sources future shuffle edges
  cancel_map_watchdogs(job, m);
  ++reexecuted_maps_;
  m_reexecutions_->inc();
  job.pending_maps.push_back(m);
}

void SimulatedJobRunner::start_fetch(ActiveJob& job, std::size_t m, std::size_t r) {
  ReduceState& rs = job.reduces[r];
  if (rs.fetched[m]) return;  // already have this partition
  rs.fetch_queue.push_back(m);
  pump_fetches(job, r);
}

void SimulatedJobRunner::pump_fetches(ActiveJob& job, std::size_t r) {
  ReduceState& rs = job.reduces[r];
  const auto id = job.id;
  while (rs.copiers < config_.reduce_parallel_copies && !rs.fetch_queue.empty()) {
    const std::size_t m = rs.fetch_queue.front();
    rs.fetch_queue.pop_front();
    if (rs.fetched[m]) continue;  // duplicate enqueue after a re-fetch
    const double bytes = job.spec.shuffle_bytes(m, r);
    const virt::VmId map_vm = job.maps[m].output_vm;
    const virt::VmId red_vm = job.timeline.reduces[r].vm;
    if (bytes > 0.0 && !cloud_.alive(map_vm)) {
      // Fetch failure against a dead node: the map output is gone for good;
      // re-execute the map (the re-run's finish re-feeds this reducer).
      mark_map_lost(job, m);
      continue;
    }
    ++rs.copiers;
    const double fetch_start = cloud_.engine().now();
    const obs::SpanId map_span = job.maps[m].done_span;
    auto arrived = reduce_guard(id, r, rs.attempt, [this, m, r, bytes, fetch_start,
                                                    map_span](ActiveJob& job2) {
      ReduceState& rs2 = job2.reduces[r];
      --rs2.copiers;
      if (!rs2.fetched[m]) {
        rs2.fetched[m] = true;
        ++rs2.fetch_count;
        rs2.fetched_bytes += bytes;
        job2.timeline.shuffle_fetched_bytes += bytes;
        m_shuffle_bytes_->add(bytes);
        rs2.last_progress = cloud_.engine().now();
        // Map output → shuffle arrival: the edge the critical-path walker
        // follows back to the last-arriving map attempt.
        tracer().cause(map_span, rs2.shuffle_span, "shuffle", fetch_start);
        maybe_merge(job2, r);
      }
      pump_fetches(job2, r);
    });
    if (bytes <= 0.0) {
      arrived();  // frees the copier slot synchronously
      continue;
    }
    // Segment fetch: read the mapper's spill (usually still in its page
    // cache) while streaming it to the reducer (concurrent stages,
    // latch-joined) — so shuffle cost is network-topology-bound, exactly the
    // term the cross-domain placement inflates.
    auto latch = sim::Latch::create(2, std::move(arrived));
    // Fetch flows link back to this reducer's shuffle span.
    obs::AmbientCause amb(tracer(), rs.shuffle_span);
    cloud_.disk_read(map_vm, bytes, [latch] { latch->arrive(); }, 1.0, map_output_key(job, m));
    cloud_.vm_transfer(map_vm, red_vm, bytes, [latch] { latch->arrive(); });
  }
}

void SimulatedJobRunner::maybe_merge(ActiveJob& job, std::size_t r) {
  ReduceState& rs = job.reduces[r];
  if (!rs.ready || rs.fetch_count < job.maps.size()) return;
  const auto id = job.id;
  const int attempt = rs.attempt;
  const virt::VmId vm = job.timeline.reduces[r].vm;
  const int pid = static_cast<int>(vm);
  const int tid = rs.tid;
  const double fetched = rs.fetched_bytes;
  const obs::SpanId shuffle_span = rs.shuffle_span;
  tracer().end(pid, tid);  // shuffle

  auto compute = reduce_guard(id, r, attempt, [this, r, vm, pid, tid, id, attempt,
                                               shuffle_span](ActiveJob& job2) {
    const obs::SpanId compute_span = tracer().begin(pid, tid, "compute", "reduce");
    // The completed shuffle made the reduce runnable.
    tracer().cause(shuffle_span, compute_span, "reduce-start");
    cloud_.run_compute(
        vm, job2.spec.reduces[r].cpu_seconds,
        reduce_guard(id, r, attempt, [this, r, vm, pid, tid, id, attempt](ActiveJob& job3) {
          tracer().end(pid, tid);  // compute
          const double out = job3.spec.reduces[r].output_bytes;
          auto done = reduce_guard(id, r, attempt,
                                   [this, r](ActiveJob& job4) { finish_reduce(job4, r); });
          if (out <= 0.0) {
            done();
          } else {
            // The commit span (and the enclosing reduce span) are closed by
            // the slot release in finish_reduce via end_all.
            const obs::SpanId commit_span = tracer().begin(pid, tid, "commit", "reduce");
            const std::string path =
                job3.spec.output_path + "/part-" + std::to_string(r) +
                (attempt > 0 ? "-a" + std::to_string(attempt) : "");
            // The HDFS write pipeline cause-links its root span to us.
            obs::AmbientCause amb(tracer(), commit_span);
            hdfs_.write_file(path, out, vm, std::move(done), config_.output_replication);
          }
        }));
  });
  if (fetched > config_.io_sort_bytes) {
    // On-disk merge pass before the reduce can run. The merge file is a
    // short-lived temp: it stays in the guest page cache while it fits and
    // spills to the NFS-backed disk beyond that — the superlinear knee the
    // paper's TeraSort curve shows past ~400 MB.
    tracer().begin(pid, tid, "merge", "reduce");
    auto compute_after_merge =
        reduce_guard(id, r, attempt, [this, pid, tid, compute](ActiveJob&) {
          tracer().end(pid, tid);  // merge
          compute();
        });
    const std::string key = "job" + std::to_string(id) + "/merge-r" + std::to_string(r);
    cloud_.scratch_write(vm, fetched,
                         reduce_guard(id, r, attempt,
                                      [this, vm, fetched, key, compute_after_merge](ActiveJob&) {
                                        cloud_.disk_read(vm, fetched, compute_after_merge,
                                                         1.0, key);
                                      }),
                         key);
  } else {
    compute();
  }
}

void SimulatedJobRunner::finish_reduce(ActiveJob& job, std::size_t r) {
  ReduceState& rs = job.reduces[r];
  if (rs.done) return;
  rs.done = true;
  if (rs.watchdog.valid()) {
    cloud_.engine().cancel(rs.watchdog);
    rs.watchdog = {};
  }
  release_slot(rs.tracker, rs.tid);
  rs.tid = -1;
  Tracker& tr = trackers_[rs.tracker];
  ++tr.free_reduce_slots;
  --tr.running;
  --job.running_reduces;
  out_of_band_heartbeat(rs.tracker);
  job.timeline.reduces[r].finished = cloud_.engine().now();
  h_reduce_seconds_->observe(job.timeline.reduces[r].finished -
                             job.timeline.reduces[r].assigned);
  ++job.reduces_done;
  maybe_finish_job(job);
}

void SimulatedJobRunner::maybe_finish_job(ActiveJob& job) {
  if (job.maps_done < job.spec.maps.size()) return;
  if (job.reduces_done < job.spec.reduces.size()) return;
  m_jobs_completed_->inc();
  queue_counter(job, "jobs_completed")->inc();
  job.timeline.finished = cloud_.engine().now();
  const double elapsed = job.timeline.elapsed();
  h_job_seconds_->observe(elapsed);
  // Per-tenant SLO accounting: the queue is the tenant. The counter is
  // created even when nothing missed, so reports and bench gates can rely
  // on the row existing.
  queue_histogram(job, "job_seconds")->observe(elapsed);
  obs::Counter* slo_missed = queue_counter(job, "slo_missed");
  if (job.spec.deadline_seconds > 0.0 && elapsed > job.spec.deadline_seconds) {
    slo_missed->inc();
  }
  if (tracer().enabled()) {
    tracer().instant(kJobTrackerPid, 0, "finish:" + job.spec.name, "job");
    tracer().end(kJobTrackerPid, static_cast<int>(job.id));  // job root span
  }
  const auto id = job.id;
  auto timeline = std::move(job.timeline);
  auto on_done = std::move(job.on_done);
  erase_job(id);  // `job` is dangling from here on
  if (on_done) on_done(timeline);
}

void SimulatedJobRunner::cancel_map_watchdogs(ActiveJob& job, std::size_t m) {
  for (auto& wd : job.maps[m].watchdog) {
    if (wd.valid()) {
      cloud_.engine().cancel(wd);
      wd = {};
    }
  }
}

void SimulatedJobRunner::arm_map_watchdog(ActiveJob& job, std::size_t m, std::size_t i,
                                          int attempt, int slot) {
  const auto id = job.id;
  job.maps[m].watchdog[slot] =
      cloud_.engine().schedule_in(config_.task_timeout_seconds, [this, id, m, i, attempt, slot] {
        ActiveJob* j = find_job(id);
        if (!j) return;
        map_timeout(*j, m, i, attempt, slot);
      });
}

void SimulatedJobRunner::map_timeout(ActiveJob& job, std::size_t m, std::size_t i, int attempt,
                                     int slot) {
  MapState& ms = job.maps[m];
  ms.watchdog[slot] = {};
  if (ms.done || ms.attempt != attempt) return;
  // Kill this attempt: free its slot, drop its chain, and requeue unless a
  // racing attempt is still healthy.
  if (trackers_[i].alive) {
    release_slot(i, ms.tid[slot]);
    ++trackers_[i].free_map_slots;
    --trackers_[i].running;
    --job.running_maps;
  }
  ms.tid[slot] = -1;
  ms.span[slot] = 0;
  if (slot == 0) ms.tracker = kNone;
  else ms.spec_tracker = kNone;
  const std::size_t survivor = (slot == 0) ? ms.spec_tracker : ms.tracker;
  if (survivor != kNone && trackers_[survivor].alive) return;
  ++ms.attempt;  // invalidates any wedged continuation
  ms.tracker = kNone;
  ms.spec_tracker = kNone;
  ++reexecuted_maps_;
  m_reexecutions_->inc();
  job.pending_maps.push_back(m);
}

void SimulatedJobRunner::arm_reduce_watchdog(ActiveJob& job, std::size_t r, int attempt) {
  const auto id = job.id;
  job.reduces[r].watchdog =
      cloud_.engine().schedule_in(config_.task_timeout_seconds, [this, id, r, attempt] {
        ActiveJob* j = find_job(id);
        if (!j) return;
        reduce_timeout(*j, r, attempt);
      });
}

void SimulatedJobRunner::reduce_timeout(ActiveJob& job, std::size_t r, int attempt) {
  ReduceState& rs = job.reduces[r];
  rs.watchdog = {};
  if (rs.done || rs.attempt != attempt) return;
  const double idle_for = cloud_.engine().now() - rs.last_progress;
  if (idle_for < config_.task_timeout_seconds) {
    // Progress was reported (shuffle arrivals); re-arm from the last one.
    const auto id = job.id;
    rs.watchdog = cloud_.engine().schedule_in(
        config_.task_timeout_seconds - idle_for, [this, id, r, attempt] {
          ActiveJob* j = find_job(id);
          if (!j) return;
          reduce_timeout(*j, r, attempt);
        });
    return;
  }
  // Wedged: restart the reduce elsewhere.
  if (trackers_[rs.tracker].alive) {
    release_slot(rs.tracker, rs.tid);
    ++trackers_[rs.tracker].free_reduce_slots;
    --trackers_[rs.tracker].running;
    --job.running_reduces;
  }
  rs.tid = -1;
  rs.span = 0;
  rs.shuffle_span = 0;
  ++rs.attempt;
  rs.assigned = false;
  rs.ready = false;
  rs.tracker = kNone;
  rs.fetched.assign(job.maps.size(), false);
  rs.fetch_count = 0;
  rs.fetched_bytes = 0.0;
  // Guarded copier completions of the dead attempt never fire; zero the
  // window so the retry starts with full copier capacity.
  rs.fetch_queue.clear();
  rs.copiers = 0;
  job.retry_reduces.push_back(r);
}

void SimulatedJobRunner::fail_all_jobs() {
  // Hadoop reports every job as failed once the last TaskTracker is lost.
  // Callbacks run after their job is removed; one that resubmits puts the
  // new job back into jobs_, where this loop fails it too.
  while (!jobs_.empty()) {
    ActiveJob& job = *jobs_.front();
    m_jobs_failed_->inc();
    queue_counter(job, "jobs_failed")->inc();
    job.timeline.finished = cloud_.engine().now();
    job.timeline.failed = true;
    if (tracer().enabled()) {
      tracer().end_all(kJobTrackerPid, static_cast<int>(job.id));  // job root span
    }
    const auto id = job.id;
    auto timeline = std::move(job.timeline);
    auto on_done = std::move(job.on_done);
    erase_job(id);
    if (on_done) on_done(timeline);
  }
}

void SimulatedJobRunner::crash_job_maps(ActiveJob& job, std::size_t dead, virt::VmId vm) {
  // Maps touched by the dead tracker.
  for (std::size_t m = 0; m < job.maps.size(); ++m) {
    MapState& ms = job.maps[m];
    const bool was_primary = ms.tracker == dead;
    const bool was_spec = ms.spec_tracker == dead;
    if (!was_primary && !was_spec && !(ms.done && ms.output_vm == vm)) continue;

    if (ms.done) {
      // Output lost? Completed maps must re-run unless every reducer has
      // already fetched them (or the output was committed to HDFS).
      const bool output_safe =
          job.spec.map_output_to_hdfs || job.spec.reduces.empty() ||
          std::all_of(job.reduces.begin(), job.reduces.end(),
                      [m](const ReduceState& rs) { return rs.fetched[m]; });
      if (ms.output_vm != vm || output_safe) continue;
      --job.maps_done;
      ++reexecuted_maps_;
      m_reexecutions_->inc();
      ms.done = false;
    } else {
      // A racing attempt on a live tracker may still win; only reschedule
      // when no live attempt remains.
      if (was_primary) {
        ms.tracker = kNone;
        ms.tid[0] = -1;
        ms.span[0] = 0;
        --job.running_maps;
      }
      if (was_spec) {
        ms.spec_tracker = kNone;
        ms.tid[1] = -1;
        ms.span[1] = 0;
        --job.running_maps;
      }
      const std::size_t survivor = was_primary ? ms.spec_tracker : ms.tracker;
      if (survivor != kNone && trackers_[survivor].alive) continue;
      ++reexecuted_maps_;
      m_reexecutions_->inc();
    }
    ++ms.attempt;  // invalidate any continuation still in flight
    ms.tracker = kNone;
    ms.spec_tracker = kNone;
    ms.tid[0] = ms.tid[1] = -1;
    ms.span[0] = ms.span[1] = 0;
    ms.done_span = 0;
    cancel_map_watchdogs(job, m);
    job.pending_maps.push_back(m);
  }
}

void SimulatedJobRunner::crash_job_reduces(ActiveJob& job, std::size_t dead) {
  // Reduces running on the dead tracker start over elsewhere.
  for (std::size_t r = 0; r < job.reduces.size(); ++r) {
    ReduceState& rs = job.reduces[r];
    if (!rs.assigned || rs.done || rs.tracker != dead) continue;
    if (rs.watchdog.valid()) {
      cloud_.engine().cancel(rs.watchdog);
      rs.watchdog = {};
    }
    rs.tid = -1;
    rs.span = 0;
    rs.shuffle_span = 0;
    ++rs.attempt;
    rs.assigned = false;
    rs.ready = false;
    rs.tracker = kNone;
    rs.fetched.assign(job.maps.size(), false);
    rs.fetch_count = 0;
    rs.fetched_bytes = 0.0;
    --job.running_reduces;
    job.retry_reduces.push_back(r);
  }
}

void SimulatedJobRunner::on_vm_crash(virt::VmId vm) {
  std::size_t dead = kNone;
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    if (trackers_[i].vm == vm) {
      dead = i;
      break;
    }
  }
  if (dead == kNone) return;
  Tracker& tr = trackers_[dead];
  tr.alive = false;
  tr.free_map_slots = 0;
  tr.free_reduce_slots = 0;
  tr.running = 0;
  // Close every span still open on the dead VM's task lanes.
  for (std::size_t k = 0; k < tr.map_slot_busy.size(); ++k) {
    if (tr.map_slot_busy[k]) tracer().end_all(static_cast<int>(vm), static_cast<int>(k));
    tr.map_slot_busy[k] = false;
  }
  for (std::size_t k = 0; k < tr.reduce_slot_busy.size(); ++k) {
    if (tr.reduce_slot_busy[k]) {
      tracer().end_all(static_cast<int>(vm),
                       config_.map_slots_per_worker + static_cast<int>(k));
    }
    tr.reduce_slot_busy[k] = false;
  }
  if (heartbeat_events_[dead].valid()) {
    cloud_.engine().cancel(heartbeat_events_[dead]);
    heartbeat_events_[dead] = {};
  }
  if (jobs_.empty()) return;

  for (auto& jp : jobs_) crash_job_maps(*jp, dead, vm);

  // With no live tracker left, every job (active and queued) fails.
  const bool any_alive =
      std::any_of(trackers_.begin(), trackers_.end(), [](const Tracker& t) { return t.alive; });
  if (!any_alive) {
    fail_all_jobs();
    return;
  }

  for (auto& jp : jobs_) crash_job_reduces(*jp, dead);
}

}  // namespace vhadoop::mapreduce

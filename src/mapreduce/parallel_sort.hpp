#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "mapreduce/kv_batch.hpp"
#include "mapreduce/thread_pool.hpp"

namespace vhadoop::mapreduce {

/// Parallel counterparts of the kv_batch.hpp sort/merge primitives.
///
/// Determinism contract (DESIGN.md §15): every *split decision* below — how
/// many runs a sort is cut into, where run boundaries fall, which key-range
/// a merge is divided at — is a pure function of the data and the tuning
/// thresholds, never of the thread count or execution schedule. Workers
/// write comparison tallies into disjoint per-unit slots that are summed in
/// fixed index order afterwards, so the counters bench/ml_scaling gates on
/// are bit-identical whether a section ran on 1 thread or 16.

/// Number of sorted runs (or merge key-ranges) a unit of `n` entries is cut
/// into: the smallest power of two K with n <= K * threshold, capped at 64.
/// K == 1 means "stay serial". Pure function of (n, threshold).
inline std::size_t run_split_count(std::size_t n, std::size_t threshold) {
  constexpr std::size_t kMaxRuns = 64;
  std::size_t k = 1;
  while (k < kMaxRuns && n > k * threshold) k *= 2;
  return k;
}

/// Stable parallel sort of [a, a+n): the range is cut into
/// run_split_count(n, threshold) contiguous runs at fixed boundaries
/// lo_k = n*k/K, each run is sorted with the serial algorithm, then runs
/// are merged pairwise level by level (ties take the left/earlier run, so
/// the result — and the comparison count — is identical to what the serial
/// sort's own merge passes would produce for that split structure).
/// K == 1 degenerates to exactly sort_entries_range, byte-for-byte
/// identical comparisons included. Returns total key comparisons.
inline std::int64_t parallel_sort_entries(KVBatch::Entry* a, std::size_t n,
                                          std::size_t threshold, WorkerPool& pool) {
  const std::size_t K = run_split_count(n, threshold);
  if (K == 1) {
    if (n <= kSortBaseRun) return sort_entries_range(a, n, nullptr);
    std::vector<KVBatch::Entry> scratch(n);
    return sort_entries_range(a, n, scratch.data());
  }
  std::vector<KVBatch::Entry> scratch(n);
  auto run_lo = [n, K](std::size_t k) { return n * k / K; };

  // Level 0: sort each run in place. Each unit touches only its own slice
  // of `a`, `scratch`, and `comps` — disjoint per-slot writes.
  std::vector<std::int64_t> comps(K, 0);
  pool.parallel_for(K, [&](std::size_t k) {
    const std::size_t lo = run_lo(k);
    comps[k] = sort_entries_range(a + lo, run_lo(k + 1) - lo, scratch.data() + lo);
  });
  std::int64_t total = 0;
  for (std::size_t k = 0; k < K; ++k) total += comps[k];

  // Merge levels: pairwise, ping-ponging between `a` and `scratch`. Every
  // level rewrites all n entries into dst (an unpaired tail block is
  // carried over by merge_adjacent_runs' n2 == 0 memcpy path), so buffer
  // parity is uniform. Summing each level's per-group tallies in group
  // order keeps the total schedule-independent.
  KVBatch::Entry* src = a;
  KVBatch::Entry* dst = scratch.data();
  bool in_a = true;
  for (std::size_t width = 1; width < K; width *= 2) {
    const std::size_t groups = (K + 2 * width - 1) / (2 * width);
    comps.assign(groups, 0);
    pool.parallel_for(groups, [&](std::size_t g) {
      const std::size_t r0 = g * 2 * width;
      const std::size_t r1 = std::min(r0 + width, K);
      const std::size_t r2 = std::min(r0 + 2 * width, K);
      const std::size_t lo = run_lo(r0);
      const std::size_t mid = run_lo(r1);
      const std::size_t hi = run_lo(r2);
      comps[g] = merge_adjacent_runs(src + lo, mid - lo, hi - mid, dst + lo);
    });
    for (std::size_t g = 0; g < groups; ++g) total += comps[g];
    std::swap(src, dst);
    in_a = !in_a;
  }
  if (!in_a) std::memcpy(a, src, n * sizeof(KVBatch::Entry));
  return total;
}

/// Split plan for one parallel k-way merge: key-range boundaries on the
/// 8-byte big-endian prefix plus, per input run, the cut positions that
/// realize them. Built deterministically from run contents only.
struct MergeRangePlan {
  std::size_t ranges = 1;
  /// cut[r][j]: first index of run r belonging to range j (cut[r][0] == 0,
  /// cut[r][ranges] == runs[r].size()).
  std::vector<std::vector<std::size_t>> cut;
  /// out_off[j]: offset of range j in the merged output (out_off[ranges] ==
  /// total entry count).
  std::vector<std::size_t> out_off;
};

/// Choose key-range boundaries for merging `runs` in parallel. Boundary
/// prefixes are picked from per-run quantile candidates (positions
/// j*size/K of each non-empty run), pooled, sorted, and sampled evenly —
/// a pure function of the run contents and K. Entries with prefix <= the
/// boundary go left; equal full keys share a prefix, so a key group can
/// never straddle a range and range-concatenation order equals the serial
/// merge order exactly. The binary searches that locate cut positions
/// compare only the precomputed prefixes and are NOT counted as key
/// comparisons (DESIGN.md §15).
inline MergeRangePlan plan_merge_ranges(std::span<const std::span<const KVBatch::Entry>> runs,
                                        std::size_t total, std::size_t min_split) {
  MergeRangePlan plan;
  plan.ranges = run_split_count(total, min_split);
  if (plan.ranges <= 1) return plan;
  const std::size_t K = plan.ranges;

  std::vector<std::uint64_t> candidates;
  candidates.reserve(runs.size() * (K - 1));
  for (const auto& run : runs) {
    if (run.empty()) continue;
    for (std::size_t j = 1; j < K; ++j) candidates.push_back(run[run.size() * j / K].prefix);
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<std::uint64_t> bounds(K - 1);
  for (std::size_t j = 1; j < K; ++j) bounds[j - 1] = candidates[candidates.size() * j / K];

  plan.cut.resize(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    auto& cut = plan.cut[r];
    cut.resize(K + 1);
    cut[0] = 0;
    cut[K] = runs[r].size();
    for (std::size_t j = 0; j + 1 < K; ++j) {
      // First entry with prefix > bounds[j]; bounds are non-decreasing, so
      // cuts are too.
      const auto it =
          std::upper_bound(runs[r].begin() + static_cast<std::ptrdiff_t>(cut[j]), runs[r].end(),
                           bounds[j], [](std::uint64_t b, const KVBatch::Entry& e) {
                             return b < e.prefix;
                           });
      cut[j + 1] = static_cast<std::size_t>(it - runs[r].begin());
    }
  }
  plan.out_off.assign(K + 1, 0);
  for (std::size_t j = 0; j < K; ++j) {
    std::size_t sz = 0;
    for (std::size_t r = 0; r < runs.size(); ++r) sz += plan.cut[r][j + 1] - plan.cut[r][j];
    plan.out_off[j + 1] = plan.out_off[j] + sz;
  }
  return plan;
}

/// Parallel k-way merge of key-sorted runs into `out`: the key space is
/// split into fixed prefix ranges (plan_merge_ranges) and each range is
/// heap-merged independently into its disjoint output window. Below the
/// min_split cutoff (or for <= 1 runs) this is exactly the serial
/// merge_runs — same output, same comparison count. Ties within a range
/// resolve to the earlier run, so the concatenated result is byte-identical
/// to the serial merge at every split factor; only the comparison *count*
/// depends on the (data-pure) split structure. Returns key comparisons.
inline std::int64_t parallel_merge_runs(std::span<const std::span<const KVBatch::Entry>> runs,
                                        std::vector<KVBatch::Entry>& out, std::size_t min_split,
                                        WorkerPool& pool) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  if (total <= min_split || runs.size() <= 1) return merge_runs(runs, out);

  const MergeRangePlan plan = plan_merge_ranges(runs, total, min_split);
  if (plan.ranges <= 1) return merge_runs(runs, out);

  out.clear();
  out.resize(total);
  std::vector<std::int64_t> comps(plan.ranges, 0);
  pool.parallel_for(plan.ranges, [&](std::size_t j) {
    std::vector<std::span<const KVBatch::Entry>> sub(runs.size());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      sub[r] = runs[r].subspan(plan.cut[r][j], plan.cut[r][j + 1] - plan.cut[r][j]);
    }
    comps[j] = merge_runs_into(sub, out.data() + plan.out_off[j]);
  });
  std::int64_t total_comps = 0;
  for (std::size_t j = 0; j < plan.ranges; ++j) total_comps += comps[j];
  return total_comps;
}

}  // namespace vhadoop::mapreduce

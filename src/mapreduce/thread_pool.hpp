#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vhadoop::mapreduce {

/// Run `fn(i)` for i in [0, n) on up to `threads` workers. Blocks until all
/// iterations finish. Iterations are claimed from an atomic counter, so the
/// schedule is dynamic but each index executes exactly once; callers write
/// only to per-index slots, which keeps the execution data-race-free
/// (C++ Core Guidelines CP.2) without locks.
inline void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(threads, n));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      try {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(n);  // drain remaining iterations
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Default worker count for logical job execution.
inline unsigned default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace vhadoop::mapreduce

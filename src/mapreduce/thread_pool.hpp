#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vhadoop::mapreduce {

/// Default worker count for logical job execution.
inline unsigned default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

namespace detail {
/// Depth of pool/parallel_for nesting on this thread. Nested parallel
/// sections execute inline on the calling worker: the split *structure* of
/// parallel algorithms is always a pure function of the data (never of the
/// thread count), so inlining changes scheduling only, not results.
inline thread_local int parallel_depth = 0;

struct ParallelDepthScope {
  ParallelDepthScope() { ++parallel_depth; }
  ~ParallelDepthScope() { --parallel_depth; }
  ParallelDepthScope(const ParallelDepthScope&) = delete;
  ParallelDepthScope& operator=(const ParallelDepthScope&) = delete;
};
}  // namespace detail

/// Run `fn(i)` for i in [0, n) on up to `threads` spawn-per-call workers.
/// Blocks until all iterations finish. Iterations are claimed from an atomic
/// counter, so the schedule is dynamic but each index executes exactly once;
/// callers write only to per-index slots, which keeps the execution
/// data-race-free (C++ Core Guidelines CP.2) without locks. A template over
/// the callable — no std::function heap allocation or virtual dispatch per
/// call. If an iteration throws, the remaining iterations are drained
/// (skipped) and the first exception is rethrown on the caller.
///
/// This is the standalone helper for one-shot callers (ml assignment loops);
/// the job runner's hot path uses the persistent WorkerPool below instead.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1 || detail::parallel_depth > 0) {
    const detail::ParallelDepthScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(threads, n));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      const detail::ParallelDepthScope scope;
      try {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(n);  // drain remaining iterations
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Persistent, lazily-started worker pool. One pool lives for the life of a
/// LocalJobRunner and serves every parallel section of every job it runs —
/// replacing the previous spawn-threads-per-call parallel_for, whose
/// fork/join cost dominated small jobs (dozens of parallel sections per ML
/// iteration, each paying worker creation).
///
/// Threads start on the first parallel batch that can actually use them
/// (never for serial pools or single-iteration batches), so a runner that
/// only ever executes small-job fast paths never creates a thread.
///
/// parallel_for is a template over the callable: the callable stays on the
/// caller's stack and is invoked through one function pointer — no
/// std::function allocation per call. Exception semantics match the free
/// function: a throwing iteration drains the remaining indices and the
/// first exception is rethrown on the caller. Nested calls (from inside a
/// worker) execute inline, so parallel algorithms may compose without
/// deadlock; determinism is unaffected because split structure never
/// depends on the execution schedule.
class WorkerPool {
 public:
  explicit WorkerPool(unsigned threads = 0)
      : threads_(threads == 0 ? default_threads() : threads) {}

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      const std::scoped_lock lock(m_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  unsigned threads() const { return threads_; }

  /// True once worker threads have been started (test/introspection hook).
  bool started() const {
    const std::scoped_lock lock(m_);
    return !workers_.empty();
  }

  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (threads_ <= 1 || n == 1 || detail::parallel_depth > 0) {
      const detail::ParallelDepthScope scope;
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    using Callable = std::remove_reference_t<Fn>;
    run_batch(
        n, +[](void* ctx, std::size_t i) { (*static_cast<Callable*>(ctx))(i); },
        const_cast<std::remove_const_t<Callable>*>(&fn));
  }

 private:
  /// Execute one batch: publish the job to the workers, participate in the
  /// claim loop, then wait until every index has finished. Returning as soon
  /// as all *indices* are done (rather than when all workers have left the
  /// claim loop) keeps batch latency low; the next publish waits for
  /// `active_ == 0` so stragglers from the previous batch can never observe
  /// the counters being reset.
  void run_batch(std::size_t n, void (*invoke)(void*, std::size_t), void* ctx) {
    start();
    {
      std::unique_lock lock(m_);
      idle_.wait(lock, [&] { return active_ == 0; });
      invoke_ = invoke;
      ctx_ = ctx;
      n_ = n;
      next_.store(0, std::memory_order_relaxed);
      completed_.store(0, std::memory_order_relaxed);
      first_error_ = nullptr;
      ++epoch_;
      ++active_;  // the caller is a full participant
    }
    wake_.notify_all();
    work();
    std::unique_lock lock(m_);
    if (--active_ == 0) idle_.notify_one();
    done_.wait(lock, [&] { return completed_.load(std::memory_order_acquire) >= n_; });
    if (first_error_) {
      const std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

  void start() {
    const std::scoped_lock lock(m_);
    if (!workers_.empty() || stop_) return;
    workers_.reserve(threads_ - 1);
    for (unsigned w = 0; w + 1 < threads_; ++w) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    std::unique_lock lock(m_);
    for (;;) {
      wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      ++active_;  // committed to this batch before releasing the lock
      lock.unlock();
      work();
      lock.lock();
      if (--active_ == 0) idle_.notify_one();
    }
  }

  /// Claim-and-execute loop shared by the caller and every worker. Each
  /// fetch_add claims a unique index; an index that throws records the
  /// first exception and drains the rest by exchanging the claim counter
  /// to n (crediting the never-claimed indices so completion accounting
  /// still reaches n exactly).
  void work() {
    const detail::ParallelDepthScope scope;
    const std::size_t n = n_;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        invoke_(ctx_, i);
        credit(1, n);
      } catch (...) {
        {
          const std::scoped_lock lock(m_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        const std::size_t old = next_.exchange(n, std::memory_order_relaxed);
        // This index, plus every index nobody will ever claim.
        credit(1 + (old < n ? n - old : 0), n);
      }
    }
  }

  void credit(std::size_t k, std::size_t n) {
    if (completed_.fetch_add(k, std::memory_order_acq_rel) + k >= n) {
      {
        // Pair with the waiter's predicate check so the notify cannot slip
        // between its load and its sleep.
        const std::scoped_lock lock(m_);
      }
      done_.notify_all();
    }
  }

  const unsigned threads_;
  mutable std::mutex m_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::condition_variable idle_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  unsigned active_ = 0;  ///< participants still inside the current claim loop

  // Current batch (published under m_, executed lock-free).
  void (*invoke_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::exception_ptr first_error_;
};

}  // namespace vhadoop::mapreduce

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mapreduce/hadoop_config.hpp"
#include "sim/time.hpp"

namespace vhadoop::mapreduce {

/// Which kind of task slot a heartbeat is offering.
enum class SlotKind { Map, Reduce };

/// The scheduler's view of one active job at a scheduling instant. Views are
/// passed in submission order, so `views[0]` is the oldest job.
struct JobSchedView {
  std::uint64_t id = 0;
  std::size_t submit_index = 0;
  std::string queue = "default";
  std::string user = "user";
  /// Running task attempts of the offered kind this job currently holds.
  int running = 0;
  /// Schedulable tasks of the offered kind (respects reduce slow-start).
  std::size_t pending = 0;
  /// A pending map is data-local to the offered VM (or needs no locality).
  /// Only populated when the scheduler reports `wants_locality()`.
  bool local_available = true;
  /// A pending map has a replica in the offered VM's rack. Always true on a
  /// single-rack cluster, so the two-tier delay walk degenerates to the
  /// classic single-delay one there.
  bool rack_local_available = true;
  /// Seconds this job has been skipped waiting for a data-local slot.
  double locality_wait = 0.0;
  /// Scheduling tier (SimJobSpec::priority); higher is more urgent.
  int priority = 0;
  /// Absolute completion deadline on the simulated clock (submit instant +
  /// SimJobSpec::deadline_seconds); kNever when the job carries none.
  double deadline = sim::kNever;
  /// Seconds since the job was submitted.
  double age = 0.0;
  /// The job has been granted at least one task slot (of either kind).
  bool started = false;
};

/// Pluggable job scheduler — the decision "which job gets this free slot",
/// extracted from the JobTracker so policies are swappable and unit-testable.
/// Implementations are pure: same views in, same choice out (determinism of
/// the whole simulation depends on it).
class Scheduler {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;
  /// True if map-slot calls should carry locality info in the views (the
  /// runner skips the per-job block scan for schedulers that ignore it).
  virtual bool wants_locality() const { return false; }
  /// Pick the job to receive one slot of `kind`; `total_slots` is the
  /// cluster-wide live slot count of that kind. Returns an index into
  /// `views` or kNone to leave the slot free this heartbeat.
  virtual std::size_t pick(const std::vector<JobSchedView>& views, SlotKind kind,
                           int total_slots) const = 0;
};

/// Hadoop 0.20's default: jobs are served strictly in submission order — a
/// later job runs nothing until every earlier job has finished.
class FifoScheduler final : public Scheduler {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t pick(const std::vector<JobSchedView>& views, SlotKind kind,
                   int total_slots) const override;
};

/// Fair scheduler: every runnable job converges to an equal share of the
/// slots (the most slot-deficient job is topped up first), with delay
/// scheduling for map locality — a job without local work on the offered VM
/// is skipped until it has waited out `locality_delay_seconds`.
class FairScheduler final : public Scheduler {
 public:
  explicit FairScheduler(double locality_delay_seconds)
      : locality_delay_(locality_delay_seconds) {}
  const char* name() const override { return "fair"; }
  bool wants_locality() const override { return true; }
  std::size_t pick(const std::vector<JobSchedView>& views, SlotKind kind,
                   int total_slots) const override;

 private:
  double locality_delay_;
};

/// Capacity scheduler: named queues with guaranteed slot fractions. The most
/// underserved queue (running/capacity) is replenished first; a queue may
/// borrow idle slots up to `max_capacity`; within a queue jobs run FIFO,
/// subject to a per-user cap of `user_limit * max_capacity * total_slots`.
class CapacityScheduler final : public Scheduler {
 public:
  explicit CapacityScheduler(std::vector<QueueConfig> queues);
  const char* name() const override { return "capacity"; }
  std::size_t pick(const std::vector<JobSchedView>& views, SlotKind kind,
                   int total_slots) const override;

  /// Queue index for a job-declared queue name (unknown names -> queue 0).
  std::size_t queue_index(const std::string& name) const;
  const std::vector<QueueConfig>& queues() const { return queues_; }

 private:
  std::vector<QueueConfig> queues_;
};

/// Deadline scheduler (PAPERS.md "Hybrid Job-driven Scheduling for Virtual
/// MapReduce Clusters"): earliest-deadline-first within priority tiers.
/// Higher tiers are always served before lower ones; within a tier the job
/// with the earliest absolute deadline wins (no-deadline jobs sort last and
/// fall back to submission order). Two escape hatches keep it safe for
/// open-loop multi-tenant traffic: a starvation window — a job that has
/// waited longer than `starvation_window` without ever starting preempts
/// the whole order, oldest first — and the Fair scheduler's delay
/// scheduling for map locality.
class DeadlineScheduler final : public Scheduler {
 public:
  DeadlineScheduler(double locality_delay_seconds, double starvation_window_seconds)
      : locality_delay_(locality_delay_seconds),
        starvation_window_(starvation_window_seconds) {}
  const char* name() const override { return "deadline"; }
  bool wants_locality() const override { return true; }
  std::size_t pick(const std::vector<JobSchedView>& views, SlotKind kind,
                   int total_slots) const override;

 private:
  double locality_delay_;
  double starvation_window_;
};

/// Build the configured scheduler (FIFO when `config.scheduler` says so,
/// etc.). Capacity with no queues gets a single catch-all "default" queue.
std::unique_ptr<Scheduler> make_scheduler(const HadoopConfig& config);

const char* to_string(SchedulerPolicy policy);
/// Parse "fifo" / "fair" / "capacity" / "deadline" (exact, lowercase);
/// nullopt otherwise.
std::optional<SchedulerPolicy> scheduler_policy_from_string(const std::string& s);

}  // namespace vhadoop::mapreduce

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "mapreduce/hadoop_config.hpp"
#include "mapreduce/sim_job.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::mapreduce {

/// The simulated JobTracker + TaskTrackers of a hadoop virtual cluster.
///
/// Workers heartbeat on a staggered period (plus an out-of-band heartbeat
/// on task completion, as Hadoop 0.20 did); each heartbeat may be assigned
/// one map and one reduce. A map task's life: child-JVM spawn (exec latency
/// + guest CPU), job localization (jar streamed from a datanode, cached per
/// VM), HDFS input read (data-local when the scheduler could honor
/// locality), compute, and map-output materialization — spills are
/// short-lived scratch that normally lives in the guest page cache.
/// Reducers fetch every map's partition as it completes, merge (spilling
/// past io.sort.mb), compute, and commit output through the HDFS pipeline.
///
/// Fault tolerance mirrors Hadoop's: when a worker VM crashes, its running
/// tasks — and completed maps whose outputs died with it — are re-executed
/// elsewhere; reducers re-fetch only what they are missing. Stragglers
/// (e.g. tasks stuck on a silently hung node) are additionally covered by
/// speculative execution: a second attempt races the slow one and the
/// first finisher wins.
///
/// Jobs are FIFO, one at a time, as the era's default scheduler ran them.
class SimulatedJobRunner {
 public:
  SimulatedJobRunner(virt::Cloud& cloud, hdfs::HdfsCluster& hdfs, HadoopConfig config,
                     std::vector<virt::VmId> workers);
  ~SimulatedJobRunner();

  SimulatedJobRunner(const SimulatedJobRunner&) = delete;
  SimulatedJobRunner& operator=(const SimulatedJobRunner&) = delete;

  /// Queue a job; `on_done` fires with the completed timeline.
  void submit(SimJobSpec spec, std::function<void(const JobTimeline&)> on_done);

  bool idle() const { return !active_ && queue_.empty(); }
  /// Tasks currently executing on `vm` (drives the migration dirty model).
  int running_tasks(virt::VmId vm) const;
  const HadoopConfig& config() const { return config_; }
  const std::vector<virt::VmId>& workers() const { return workers_; }
  /// Map tasks that ran more than once (re-execution or speculation).
  int reexecuted_maps() const { return reexecuted_maps_; }

  /// Register a new TaskTracker (cluster scale-out): the VM starts
  /// heartbeating and receives tasks from the next beat on.
  void add_tracker(virt::VmId vm);

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Tracker {
    virt::VmId vm;
    int free_map_slots = 0;
    int free_reduce_slots = 0;
    int running = 0;
    bool alive = true;
    /// Trace-lane occupancy: map slots take tids [0, map_slots), reduce
    /// slots [map_slots, map_slots + reduce_slots).
    std::vector<bool> map_slot_busy;
    std::vector<bool> reduce_slot_busy;
  };

  struct PendingJob {
    SimJobSpec spec;
    std::function<void(const JobTimeline&)> on_done;
  };

  struct MapState {
    int attempt = 0;
    bool done = false;
    std::size_t tracker = kNone;       ///< primary attempt's tracker
    std::size_t spec_tracker = kNone;  ///< speculative attempt's tracker
    virt::VmId output_vm = 0;          ///< where the winning spill lives
    sim::Engine::EventId watchdog[2];  ///< per-slot task timeout (0=primary)
    int tid[2] = {-1, -1};             ///< trace lane per attempt slot
  };

  struct ReduceState {
    int attempt = 0;
    bool assigned = false;
    bool ready = false;  ///< JVM + localization finished, may fetch
    bool done = false;
    std::size_t tracker = kNone;
    std::vector<bool> fetched;
    std::size_t fetch_count = 0;
    double fetched_bytes = 0.0;
    double last_progress = 0.0;        ///< refreshed by shuffle arrivals
    sim::Engine::EventId watchdog;
    int tid = -1;  ///< trace lane of the current attempt
  };

  struct ActiveJob {
    SimJobSpec spec;
    std::function<void(const JobTimeline&)> on_done;
    JobTimeline timeline;
    std::deque<std::size_t> pending_maps;
    std::deque<std::size_t> retry_reduces;
    std::vector<MapState> maps;
    std::vector<ReduceState> reduces;
    std::size_t maps_done = 0;
    std::size_t reduces_done = 0;
    std::size_t next_reduce = 0;
    std::uint64_t epoch = 0;  ///< guards stale callbacks across jobs
  };

  void start_next_job();
  void start_heartbeats();
  void heartbeat(std::size_t tracker_idx);
  void out_of_band_heartbeat(std::size_t tracker_idx);
  void localize(virt::VmId vm, std::function<void()> next);
  void maybe_assign_map(std::size_t tracker_idx);
  void maybe_speculate(std::size_t tracker_idx);
  void maybe_assign_reduce(std::size_t tracker_idx);
  void run_map(std::size_t m, std::size_t tracker_idx, int attempt, int tid);
  void finish_map(std::size_t m, std::size_t tracker_idx);
  void run_reduce(std::size_t r, std::size_t tracker_idx, int attempt, int tid);
  void start_fetch(std::size_t m, std::size_t r);
  void maybe_merge(std::size_t r);
  void finish_reduce(std::size_t r);
  void maybe_finish_job();
  void on_vm_crash(virt::VmId vm);
  void arm_map_watchdog(std::size_t m, std::size_t tracker_idx, int attempt, int slot);
  void map_timeout(std::size_t m, std::size_t tracker_idx, int attempt, int slot);
  void arm_reduce_watchdog(std::size_t r, int attempt);
  void reduce_timeout(std::size_t r, int attempt);
  void cancel_map_watchdogs(std::size_t m);
  /// A completed map whose output became unreachable (fetch failure
  /// against a dead node) is demoted back to pending — Hadoop's
  /// "too many fetch failures" re-execution.
  void mark_map_lost(std::size_t m);

  /// Continuation valid only while job `epoch` is active and map m is
  /// still on attempt `attempt` (re-execution invalidates older chains).
  std::function<void()> map_guard(std::uint64_t epoch, std::size_t m, int attempt,
                                  std::function<void()> fn);
  std::function<void()> reduce_guard(std::uint64_t epoch, std::size_t r, int attempt,
                                     std::function<void()> fn);

  /// Page-cache key for map task m's final spill (unique per job).
  std::string map_output_key(std::size_t m) const {
    return "job" + std::to_string(active_->epoch) + "/spill-m" + std::to_string(m);
  }

  obs::Tracer& tracer() { return cloud_.engine().tracer(); }
  /// Claim the lowest free trace lane in `busy`, growing it defensively.
  int acquire_slot(std::vector<bool>& busy, int base);
  /// Free the lane and close any spans a dropped chain left open on it.
  void release_slot(std::size_t tracker_idx, int tid);

  virt::Cloud& cloud_;
  hdfs::HdfsCluster& hdfs_;
  HadoopConfig config_;
  std::vector<virt::VmId> workers_;
  std::vector<Tracker> trackers_;
  std::deque<PendingJob> queue_;
  std::unique_ptr<ActiveJob> active_;
  std::uint64_t epoch_counter_ = 0;
  int reexecuted_maps_ = 0;
  std::vector<sim::Engine::EventId> heartbeat_events_;

  obs::Counter* m_map_attempts_;
  obs::Counter* m_reduce_attempts_;
  obs::Counter* m_speculative_launched_;
  obs::Counter* m_speculative_wins_;
  obs::Counter* m_reexecutions_;
  obs::Counter* m_heartbeats_;
  obs::Counter* m_jobs_completed_;
  obs::Counter* m_jobs_failed_;
  obs::Counter* m_shuffle_bytes_;
  obs::Histogram* h_map_seconds_;
  obs::Histogram* h_reduce_seconds_;
};

}  // namespace vhadoop::mapreduce

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "mapreduce/hadoop_config.hpp"
#include "mapreduce/scheduler.hpp"
#include "mapreduce/sim_job.hpp"
#include "obs/trace.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::mapreduce {

/// The simulated JobTracker + TaskTrackers of a hadoop virtual cluster.
///
/// Workers heartbeat on a staggered period (plus an out-of-band heartbeat
/// on task completion, as Hadoop 0.20 did); each heartbeat may be assigned
/// one map and one reduce. A map task's life: child-JVM spawn (exec latency
/// + guest CPU), job localization (jar streamed from a datanode, cached per
/// VM), HDFS input read (data-local when the scheduler could honor
/// locality), compute, and map-output materialization — spills are
/// short-lived scratch that normally lives in the guest page cache.
/// Reducers fetch every map's partition as it completes, merge (spilling
/// past io.sort.mb), compute, and commit output through the HDFS pipeline.
///
/// Fault tolerance mirrors Hadoop's: when a worker VM crashes, its running
/// tasks — and completed maps whose outputs died with it — are re-executed
/// elsewhere; reducers re-fetch only what they are missing. Stragglers
/// (e.g. tasks stuck on a silently hung node) are additionally covered by
/// speculative execution: a second attempt races the slow one and the
/// first finisher wins.
///
/// Multiple jobs may be active at once; which job a freed slot goes to is
/// the pluggable Scheduler's decision (HadoopConfig::scheduler). The FIFO
/// policy reproduces the era's default — strictly one job at a time — while
/// Fair and Capacity interleave jobs for multi-tenant traffic.
class SimulatedJobRunner {
 public:
  /// Trace process for JobTracker-level recording: submit/finish instants
  /// go on tid 0, and every job gets a root span (cat "job") on its own
  /// lane, tid = job id, spanning [submitted, finished]. Task attempt spans
  /// are cause-linked from the root ("dispatch" edges), so the critical-path
  /// analyzer (obs/critpath.*) can attribute each job's makespan.
  static constexpr int kJobTrackerPid = 9998;

  SimulatedJobRunner(virt::Cloud& cloud, hdfs::HdfsCluster& hdfs, HadoopConfig config,
                     std::vector<virt::VmId> workers);
  ~SimulatedJobRunner();

  SimulatedJobRunner(const SimulatedJobRunner&) = delete;
  SimulatedJobRunner& operator=(const SimulatedJobRunner&) = delete;

  /// Submit a job; `on_done` fires with the completed timeline. The job is
  /// runnable immediately — whether it actually receives slots while other
  /// jobs are active is the scheduler's call.
  void submit(SimJobSpec spec, std::function<void(const JobTimeline&)> on_done);

  bool idle() const { return jobs_.empty(); }
  /// Jobs submitted but not yet completed or failed.
  std::size_t active_jobs() const { return jobs_.size(); }
  /// Tasks currently executing on `vm` (drives the migration dirty model).
  int running_tasks(virt::VmId vm) const;
  const HadoopConfig& config() const { return config_; }
  const std::vector<virt::VmId>& workers() const { return workers_; }
  const char* scheduler_name() const { return scheduler_->name(); }
  /// Map tasks that ran more than once (re-execution or speculation).
  int reexecuted_maps() const { return reexecuted_maps_; }

  /// Register a new TaskTracker (cluster scale-out): the VM starts
  /// heartbeating and receives tasks from the next beat on.
  void add_tracker(virt::VmId vm);

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Tracker {
    virt::VmId vm;
    int free_map_slots = 0;
    int free_reduce_slots = 0;
    int running = 0;
    bool alive = true;
    /// Trace-lane occupancy: map slots take tids [0, map_slots), reduce
    /// slots [map_slots, map_slots + reduce_slots).
    std::vector<bool> map_slot_busy;
    std::vector<bool> reduce_slot_busy;
  };

  struct MapState {
    int attempt = 0;
    bool done = false;
    std::size_t tracker = kNone;       ///< primary attempt's tracker
    std::size_t spec_tracker = kNone;  ///< speculative attempt's tracker
    virt::VmId output_vm = 0;          ///< where the winning spill lives
    sim::Engine::EventId watchdog[2];  ///< per-slot task timeout (0=primary)
    int tid[2] = {-1, -1};             ///< trace lane per attempt slot
    obs::SpanId span[2] = {0, 0};      ///< task attempt span per slot
    /// Winning attempt's span: the `from` of the "shuffle" cause edges the
    /// reducers record when this map's partition arrives.
    obs::SpanId done_span = 0;
  };

  struct ReduceState {
    int attempt = 0;
    bool assigned = false;
    bool ready = false;  ///< JVM + localization finished, may fetch
    bool done = false;
    std::size_t tracker = kNone;
    std::vector<bool> fetched;
    std::size_t fetch_count = 0;
    double fetched_bytes = 0.0;
    /// Map indices waiting for a copier slot (FIFO; see pump_fetches).
    std::deque<std::size_t> fetch_queue;
    /// In-flight parallel copies (≤ config.reduce_parallel_copies).
    int copiers = 0;
    double last_progress = 0.0;        ///< refreshed by shuffle arrivals
    sim::Engine::EventId watchdog;
    int tid = -1;                  ///< trace lane of the current attempt
    obs::SpanId span = 0;          ///< current attempt's task span
    obs::SpanId shuffle_span = 0;  ///< current attempt's shuffle span
  };

  /// One in-flight job: the per-job state machine that used to be the whole
  /// runner, now instantiated once per concurrent job.
  struct ActiveJob {
    std::uint64_t id = 0;        ///< unique; guards stale callbacks
    std::size_t submit_index = 0;  ///< FIFO order for the schedulers
    SimJobSpec spec;
    std::function<void(const JobTimeline&)> on_done;
    JobTimeline timeline;
    std::deque<std::size_t> pending_maps;
    std::deque<std::size_t> retry_reduces;
    std::vector<MapState> maps;
    std::vector<ReduceState> reduces;
    std::size_t maps_done = 0;
    std::size_t reduces_done = 0;
    std::size_t next_reduce = 0;
    int running_maps = 0;     ///< live map attempts (scheduler share basis)
    int running_reduces = 0;  ///< live reduce attempts
    bool started = false;     ///< first slot granted (queue-wait observed)
    obs::SpanId root_span = 0;  ///< job span on the JobTracker lane
    /// Delay scheduling: when this job first got skipped for lacking a
    /// data-local map on an offered VM (<0 = not currently waiting).
    double locality_wait_since = -1.0;
  };

  using JobFn = std::function<void(ActiveJob&)>;

  ActiveJob* find_job(std::uint64_t id);
  void erase_job(std::uint64_t id);
  void fail_all_jobs();
  void start_heartbeats();
  void heartbeat(std::size_t tracker_idx);
  void out_of_band_heartbeat(std::size_t tracker_idx);
  void localize(ActiveJob& job, virt::VmId vm, std::function<void()> next);

  /// Ask the scheduler which job gets a slot of `kind` on this tracker.
  /// Returns an index into jobs_ or kNone.
  std::size_t pick_job(SlotKind kind, std::size_t tracker_idx);
  /// Tasks of `kind` the scheduler may place for this job right now
  /// (reduce counts respect slow-start).
  std::size_t schedulable_tasks(const ActiveJob& job, SlotKind kind) const;
  /// Best locality any pending map of this job can achieve on `vm`: `node`
  /// when some map's block has a replica on the VM itself (or needs no
  /// locality), `rack` when the best on offer is a replica elsewhere in the
  /// VM's rack.
  struct MapLocality {
    bool node = false;
    bool rack = false;
  };
  MapLocality job_map_locality(const ActiveJob& job, virt::VmId vm) const;
  int total_live_slots(SlotKind kind) const;
  void note_job_started(ActiveJob& job);

  void maybe_assign_map(std::size_t tracker_idx);
  void maybe_speculate(std::size_t tracker_idx);
  void maybe_assign_reduce(std::size_t tracker_idx);
  /// `slot` distinguishes the primary (0) and speculative (1) attempt.
  void run_map(ActiveJob& job, std::size_t m, std::size_t tracker_idx, int attempt, int slot,
               int tid);
  void finish_map(ActiveJob& job, std::size_t m, std::size_t tracker_idx);
  void run_reduce(ActiveJob& job, std::size_t r, std::size_t tracker_idx, int attempt,
                  int tid);
  /// Queue map `m`'s partition for reduce `r` and start copies while
  /// copier slots are free.
  void start_fetch(ActiveJob& job, std::size_t m, std::size_t r);
  /// Launch queued fetches up to reduce_parallel_copies in flight.
  void pump_fetches(ActiveJob& job, std::size_t r);
  void maybe_merge(ActiveJob& job, std::size_t r);
  void finish_reduce(ActiveJob& job, std::size_t r);
  void maybe_finish_job(ActiveJob& job);
  void on_vm_crash(virt::VmId vm);
  void crash_job_maps(ActiveJob& job, std::size_t dead, virt::VmId vm);
  void crash_job_reduces(ActiveJob& job, std::size_t dead);
  void arm_map_watchdog(ActiveJob& job, std::size_t m, std::size_t tracker_idx, int attempt,
                        int slot);
  void map_timeout(ActiveJob& job, std::size_t m, std::size_t tracker_idx, int attempt,
                   int slot);
  void arm_reduce_watchdog(ActiveJob& job, std::size_t r, int attempt);
  void reduce_timeout(ActiveJob& job, std::size_t r, int attempt);
  void cancel_map_watchdogs(ActiveJob& job, std::size_t m);
  /// A completed map whose output became unreachable (fetch failure
  /// against a dead node) is demoted back to pending — Hadoop's
  /// "too many fetch failures" re-execution.
  void mark_map_lost(ActiveJob& job, std::size_t m);

  /// Continuation valid only while job `id` is active and map m is still on
  /// attempt `attempt` (re-execution invalidates older chains). The live
  /// ActiveJob is re-resolved at fire time — never captured.
  std::function<void()> map_guard(std::uint64_t id, std::size_t m, int attempt, JobFn fn);
  std::function<void()> reduce_guard(std::uint64_t id, std::size_t r, int attempt, JobFn fn);

  /// Page-cache key for map task m's final spill (unique per job).
  static std::string map_output_key(const ActiveJob& job, std::size_t m) {
    return "job" + std::to_string(job.id) + "/spill-m" + std::to_string(m);
  }

  obs::Tracer& tracer() { return cloud_.engine().tracer(); }
  /// Claim the lowest free trace lane in `busy`, growing it defensively.
  int acquire_slot(std::vector<bool>& busy, int base);
  /// Free the lane and close any spans a dropped chain left open on it.
  void release_slot(std::size_t tracker_idx, int tid);
  obs::Counter* queue_counter(const ActiveJob& job, const char* what);
  /// Per-tenant latency histogram (`mr.queue.<queue>.<what>`), created on
  /// first use with the same buckets as mr.job_seconds.
  obs::Histogram* queue_histogram(const ActiveJob& job, const char* what);

  virt::Cloud& cloud_;
  hdfs::HdfsCluster& hdfs_;
  HadoopConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<virt::VmId> workers_;
  std::vector<Tracker> trackers_;
  /// Active jobs in submission order (completed/failed jobs are removed).
  std::vector<std::unique_ptr<ActiveJob>> jobs_;
  std::uint64_t next_job_id_ = 0;
  std::size_t submit_counter_ = 0;
  int reexecuted_maps_ = 0;
  std::vector<sim::Engine::EventId> heartbeat_events_;

  obs::Counter* m_map_attempts_;
  obs::Counter* m_reduce_attempts_;
  obs::Counter* m_speculative_launched_;
  obs::Counter* m_speculative_wins_;
  obs::Counter* m_reexecutions_;
  obs::Counter* m_heartbeats_;
  obs::Counter* m_jobs_completed_;
  obs::Counter* m_jobs_failed_;
  obs::Counter* m_shuffle_bytes_;
  /// Map input locality tiers actually achieved (HDFS-backed maps only).
  obs::Counter* m_locality_node_;
  obs::Counter* m_locality_rack_;
  obs::Counter* m_locality_off_;
  obs::Gauge* g_jobs_running_;
  obs::Histogram* h_map_seconds_;
  obs::Histogram* h_reduce_seconds_;
  obs::Histogram* h_job_seconds_;
  obs::Histogram* h_queue_wait_seconds_;
  obs::Histogram* h_map_slot_share_;
};

}  // namespace vhadoop::mapreduce

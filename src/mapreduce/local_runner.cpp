#include "mapreduce/local_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "mapreduce/kv_batch.hpp"
#include "mapreduce/thread_pool.hpp"

namespace vhadoop::mapreduce {

namespace {

bool reference_mode_from_env() {
  // vlint: allow(no-os-entropy) audited PR 8: opt-in oracle switch; both modes produce byte-identical job results, verified by the runner equivalence suite
  const char* v = std::getenv("VHADOOP_RUNNER_REFERENCE");
  return v != nullptr && *v != '\0' && *v != '0';
}

}  // namespace

LocalJobRunner::LocalJobRunner(unsigned threads)
    : LocalJobRunner(threads, reference_mode_from_env()) {}

LocalJobRunner::LocalJobRunner(unsigned threads, bool reference)
    : threads_(threads == 0 ? default_threads() : threads), reference_(reference) {}

void sort_by_key(std::vector<KV>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const KV& a, const KV& b) { return a.key < b.key; });
}

std::vector<KV> reduce_sorted(Reducer& reducer, std::span<const KV> sorted) {
  Context ctx;
  reducer.setup(ctx);
  std::size_t i = 0;
  std::vector<std::string_view> values;
  while (i < sorted.size()) {
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    reducer.reduce(sorted[i].key, values, ctx);
    i = j;
  }
  reducer.cleanup(ctx);
  return ctx.take_output();
}

namespace {

double modeled_cpu(const CostModel& c, std::int64_t in_records, double in_bytes,
                   std::int64_t out_records, double out_bytes, bool is_map) {
  const double per_record = is_map ? c.map_cpu_per_record : c.reduce_cpu_per_record;
  const double per_byte = is_map ? c.map_cpu_per_byte : c.reduce_cpu_per_byte;
  // Input drives the dominant term; emitted data costs the same rates again
  // (serialization + sort feeding).
  return c.task_cpu_fixed + per_record * static_cast<double>(in_records) +
         per_byte * in_bytes + 0.5 * (per_record * static_cast<double>(out_records) +
                                      per_byte * out_bytes);
}

int clamp_splits(int num_splits, unsigned threads, std::size_t input_size) {
  int s = num_splits > 0 ? num_splits : static_cast<int>(threads);
  return std::max(1, std::min<int>(s, input_size == 0 ? 1 : static_cast<int>(input_size)));
}

Partitioner effective_partitioner(const JobSpec& spec) {
  return spec.partitioner
             ? spec.partitioner
             : Partitioner([](std::string_view k, int r) { return default_partition(k, r); });
}

/// Group a key-sorted entry run (equal keys are adjacent) and feed each
/// group to `reducer`, collecting output in `ctx`. The equality test uses
/// the 8-byte prefix as a cheap pre-filter before the full key compare.
void reduce_entries_into(Reducer& reducer, std::span<const KVBatch::Entry> sorted, Context& ctx) {
  reducer.setup(ctx);
  std::size_t i = 0;
  std::vector<std::string_view> values;
  while (i < sorted.size()) {
    const KVBatch::Entry& first = sorted[i];
    const std::string_view key = first.key();
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].prefix == first.prefix && sorted[j].key() == key) {
      values.push_back(sorted[j].value());
      ++j;
    }
    reducer.reduce(key, values, ctx);
    i = j;
  }
  reducer.cleanup(ctx);
}

// --- reference path (VHADOOP_RUNNER_REFERENCE=1 oracle) ---------------------

struct MapTaskOutput {
  std::vector<std::vector<KV>> partitions;  // [reduce] -> records (sorted)
  TaskProfile profile;
  std::int64_t emit_records = 0;
  std::int64_t emit_bytes = 0;
};

// --- optimized path (arena-backed, default) ---------------------------------

struct OptMapOutput {
  KVBatch arena;                                    // owns all mapper-emitted bytes
  std::vector<KVBatch> combined;                    // [reduce] combiner output arenas
  std::vector<std::vector<KVBatch::Entry>> parts;   // [reduce] -> sorted entries
  std::vector<double> part_bytes;                   // [reduce] -> shuffle bytes
  TaskProfile profile;
  std::int64_t emit_records = 0;
  std::int64_t emit_bytes = 0;
  std::int64_t sort_comparisons = 0;
  std::int64_t arena_chunks = 0;
};

}  // namespace

JobResult LocalJobRunner::run(const JobSpec& spec, std::span<const KV> input,
                              int num_splits) const {
  if (!spec.mapper) throw std::invalid_argument("JobSpec: missing mapper factory");
  if (!spec.reducer) throw std::invalid_argument("JobSpec: missing reducer factory");
  if (spec.config.use_combiner && !spec.combiner) {
    throw std::invalid_argument("JobSpec: use_combiner set but no combiner factory");
  }
  if (spec.config.num_reduces < 1) throw std::invalid_argument("JobSpec: num_reduces < 1");
  return reference_ ? run_reference(spec, input, num_splits)
                    : run_optimized(spec, input, num_splits);
}

JobResult LocalJobRunner::run_optimized(const JobSpec& spec, std::span<const KV> input,
                                        int num_splits) const {
  const int R = spec.config.num_reduces;
  const int S = clamp_splits(num_splits, threads_, input.size());
  // The default HashPartitioner is called once per emitted record; dispatch
  // to it directly (inlined) instead of through a std::function unless the
  // job installed a custom partitioner.
  const bool custom_partitioner = static_cast<bool>(spec.partitioner);
  const Partitioner partition = effective_partitioner(spec);

  // --- map phase -----------------------------------------------------------
  // One arena per map task; partition lists hold 24-byte entries, so the
  // partition -> sort -> combine pipeline never copies key/value payloads.
  std::vector<OptMapOutput> map_out(static_cast<std::size_t>(S));
  const std::size_t n = input.size();
  parallel_for(static_cast<std::size_t>(S), threads_, [&](std::size_t m) {
    const std::size_t lo = n * m / static_cast<std::size_t>(S);
    const std::size_t hi = n * (m + 1) / static_cast<std::size_t>(S);
    auto split = input.subspan(lo, hi - lo);

    auto mapper = spec.mapper();
    Context ctx;
    mapper->setup(ctx);
    double in_bytes = 0.0;
    for (const KV& rec : split) {
      in_bytes += static_cast<double>(rec.bytes());
      mapper->map(rec.key, rec.value, ctx);
    }
    mapper->cleanup(ctx);

    OptMapOutput& out = map_out[m];
    out.arena = ctx.take_batch();
    out.emit_records = static_cast<std::int64_t>(out.arena.size());
    out.emit_bytes = static_cast<std::int64_t>(out.arena.total_bytes());
    out.arena_chunks = out.arena.chunks_allocated();
    out.profile.input_records = static_cast<std::int64_t>(split.size());
    out.profile.input_bytes = in_bytes;

    // Partition entries (not records) and account shuffle bytes in the same
    // pass — the reference path re-walks every record for the byte totals.
    // Each entry's slot is computed once into `slot`, counted, and the
    // partition lists reserved exactly: no growth reallocations and no
    // second hash pass.
    const auto entries = out.arena.entries();
    std::vector<std::uint32_t> slot(entries.size());
    std::vector<std::size_t> counts(static_cast<std::size_t>(R), 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::string_view key = entries[i].key();
      const int p = custom_partitioner ? partition(key, R) : default_partition(key, R);
      if (p < 0 || p >= R) throw std::out_of_range("partitioner returned out-of-range index");
      slot[i] = static_cast<std::uint32_t>(p);
      ++counts[static_cast<std::size_t>(p)];
    }
    out.parts.assign(static_cast<std::size_t>(R), {});
    out.part_bytes.assign(static_cast<std::size_t>(R), 0.0);
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) out.parts[r].reserve(counts[r]);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out.parts[slot[i]].push_back(entries[i]);
      out.part_bytes[slot[i]] += static_cast<double>(entries[i].bytes());
    }
    if (spec.config.use_combiner) out.combined.resize(static_cast<std::size_t>(R));
    for (std::size_t p = 0; p < static_cast<std::size_t>(R); ++p) {
      auto& part = out.parts[p];
      out.sort_comparisons += sort_entries(part);
      if (spec.config.use_combiner && !part.empty()) {
        auto combiner = spec.combiner();
        Context cctx;
        reduce_entries_into(*combiner, part, cctx);
        out.combined[p] = cctx.take_batch();
        const KVBatch& cb = out.combined[p];
        out.arena_chunks += cb.chunks_allocated();
        part.assign(cb.entries().begin(), cb.entries().end());
        out.sort_comparisons += sort_entries(part);  // combiner may emit in any order
        out.part_bytes[p] = static_cast<double>(cb.total_bytes());
      }
      for (const KVBatch::Entry& e : part) {
        ++out.profile.output_records;
        out.profile.output_bytes += static_cast<double>(e.bytes());
      }
    }
    out.profile.cpu_seconds =
        modeled_cpu(spec.config.cost, out.profile.input_records, out.profile.input_bytes,
                    out.profile.output_records, out.profile.output_bytes, /*is_map=*/true);
  });

  // --- shuffle accounting --------------------------------------------------
  // Byte totals were accumulated during partitioning; both paths sum the
  // same integral record sizes, so the doubles are exactly equal.
  JobResult result;
  result.shuffle_matrix.assign(static_cast<std::size_t>(S),
                               std::vector<double>(static_cast<std::size_t>(R), 0.0));
  for (std::size_t m = 0; m < static_cast<std::size_t>(S); ++m) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
      result.shuffle_matrix[m][r] = map_out[m].part_bytes[r];
      result.total_shuffle_bytes += map_out[m].part_bytes[r];
    }
  }

  // --- reduce phase --------------------------------------------------------
  // True k-way merge of the per-map sorted runs; ties resolve to the earlier
  // map then within-run order, which is exactly the order the reference
  // path's stable sort of the concatenation produces.
  std::vector<std::vector<KV>> reduce_out(static_cast<std::size_t>(R));
  std::vector<TaskProfile> reduce_profiles(static_cast<std::size_t>(R));
  std::vector<std::int64_t> merge_comparisons(static_cast<std::size_t>(R), 0);
  parallel_for(static_cast<std::size_t>(R), threads_, [&](std::size_t r) {
    TaskProfile& prof = reduce_profiles[r];
    std::vector<std::span<const KVBatch::Entry>> runs;
    runs.reserve(static_cast<std::size_t>(S));
    for (std::size_t m = 0; m < static_cast<std::size_t>(S); ++m) {
      const auto& part = map_out[m].parts[r];
      prof.input_records += static_cast<std::int64_t>(part.size());
      prof.input_bytes += map_out[m].part_bytes[r];
      runs.push_back(part);
    }
    std::vector<KVBatch::Entry> merged;
    merge_comparisons[r] = merge_runs(runs, merged);

    auto reducer = spec.reducer();
    Context ctx;
    // Reduce output becomes JobResult::output (owning strings): materialize
    // directly rather than round-tripping every record through an arena.
    ctx.materialize_direct();
    ctx.reserve(merged.size());
    reduce_entries_into(*reducer, merged, ctx);
    reduce_out[r] = ctx.take_output();
    for (const KV& rec : reduce_out[r]) {
      ++prof.output_records;
      prof.output_bytes += static_cast<double>(rec.bytes());
    }
    prof.cpu_seconds = modeled_cpu(spec.config.cost, prof.input_records, prof.input_bytes,
                                   prof.output_records, prof.output_bytes, /*is_map=*/false);
  });

  // Aggregate stats sequentially so the totals are deterministic.
  for (const OptMapOutput& m : map_out) {
    result.map_profiles.push_back(m.profile);
    result.stats.map_emit_records += m.emit_records;
    result.stats.map_emit_bytes += m.emit_bytes;
    result.stats.sort_comparisons += m.sort_comparisons;
    result.stats.arena_chunks += m.arena_chunks;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
    result.stats.shuffle_records += reduce_profiles[r].input_records;
    result.stats.merge_comparisons += merge_comparisons[r];
  }
  result.reduce_profiles = std::move(reduce_profiles);
  for (auto& part : reduce_out) {
    result.output.insert(result.output.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  return result;
}

JobResult LocalJobRunner::run_reference(const JobSpec& spec, std::span<const KV> input,
                                        int num_splits) const {
  const int R = spec.config.num_reduces;
  const int S = clamp_splits(num_splits, threads_, input.size());
  const Partitioner partition = effective_partitioner(spec);

  // --- map phase -----------------------------------------------------------
  std::vector<MapTaskOutput> map_out(static_cast<std::size_t>(S));
  const std::size_t n = input.size();
  parallel_for(static_cast<std::size_t>(S), threads_, [&](std::size_t m) {
    const std::size_t lo = n * m / static_cast<std::size_t>(S);
    const std::size_t hi = n * (m + 1) / static_cast<std::size_t>(S);
    auto split = input.subspan(lo, hi - lo);

    auto mapper = spec.mapper();
    Context ctx;
    mapper->setup(ctx);
    double in_bytes = 0.0;
    for (const KV& rec : split) {
      in_bytes += static_cast<double>(rec.bytes());
      mapper->map(rec.key, rec.value, ctx);
    }
    mapper->cleanup(ctx);
    MapTaskOutput& out = map_out[m];
    out.emit_records = static_cast<std::int64_t>(ctx.emitted_records());
    out.emit_bytes = static_cast<std::int64_t>(ctx.emitted_bytes());
    std::vector<KV> emitted = ctx.take_output();

    out.profile.input_records = static_cast<std::int64_t>(split.size());
    out.profile.input_bytes = in_bytes;

    // Partition, sort, optionally combine — the in-memory spill path.
    out.partitions.assign(static_cast<std::size_t>(R), {});
    for (KV& rec : emitted) {
      const int p = partition(rec.key, R);
      if (p < 0 || p >= R) throw std::out_of_range("partitioner returned out-of-range index");
      out.partitions[static_cast<std::size_t>(p)].push_back(std::move(rec));
    }
    for (auto& part : out.partitions) {
      sort_by_key(part);
      if (spec.config.use_combiner && !part.empty()) {
        auto combiner = spec.combiner();
        part = reduce_sorted(*combiner, part);
        sort_by_key(part);  // combiner may emit in any order
      }
      for (const KV& rec : part) {
        ++out.profile.output_records;
        out.profile.output_bytes += static_cast<double>(rec.bytes());
      }
    }
    out.profile.cpu_seconds =
        modeled_cpu(spec.config.cost, out.profile.input_records, out.profile.input_bytes,
                    out.profile.output_records, out.profile.output_bytes, /*is_map=*/true);
  });

  // --- shuffle accounting --------------------------------------------------
  JobResult result;
  result.shuffle_matrix.assign(static_cast<std::size_t>(S),
                               std::vector<double>(static_cast<std::size_t>(R), 0.0));
  for (int m = 0; m < S; ++m) {
    for (int r = 0; r < R; ++r) {
      double bytes = 0.0;
      for (const KV& rec : map_out[static_cast<std::size_t>(m)].partitions[static_cast<std::size_t>(r)]) {
        bytes += static_cast<double>(rec.bytes());
      }
      result.shuffle_matrix[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)] = bytes;
      result.total_shuffle_bytes += bytes;
    }
  }

  // --- reduce phase --------------------------------------------------------
  std::vector<std::vector<KV>> reduce_out(static_cast<std::size_t>(R));
  std::vector<TaskProfile> reduce_profiles(static_cast<std::size_t>(R));
  parallel_for(static_cast<std::size_t>(R), threads_, [&](std::size_t r) {
    // Merge the sorted segments from every map (Hadoop's merge phase);
    // segments are already sorted so a stable sort of the concatenation is
    // equivalent to the k-way merge.
    std::vector<KV> merged;
    TaskProfile& prof = reduce_profiles[r];
    for (int m = 0; m < S; ++m) {
      const auto& part = map_out[static_cast<std::size_t>(m)].partitions[r];
      prof.input_records += static_cast<std::int64_t>(part.size());
      for (const KV& rec : part) prof.input_bytes += static_cast<double>(rec.bytes());
      merged.insert(merged.end(), part.begin(), part.end());
    }
    sort_by_key(merged);

    auto reducer = spec.reducer();
    reduce_out[r] = reduce_sorted(*reducer, merged);
    for (const KV& rec : reduce_out[r]) {
      ++prof.output_records;
      prof.output_bytes += static_cast<double>(rec.bytes());
    }
    prof.cpu_seconds = modeled_cpu(spec.config.cost, prof.input_records, prof.input_bytes,
                                   prof.output_records, prof.output_bytes, /*is_map=*/false);
  });

  // Mode-independent stats only: the reference path has no entry sorts,
  // k-way merge, or arenas to count (DataPathStats doc in job.hpp).
  for (const MapTaskOutput& m : map_out) {
    result.map_profiles.push_back(m.profile);
    result.stats.map_emit_records += m.emit_records;
    result.stats.map_emit_bytes += m.emit_bytes;
  }
  for (const TaskProfile& prof : reduce_profiles) {
    result.stats.shuffle_records += prof.input_records;
  }
  result.reduce_profiles = std::move(reduce_profiles);
  for (auto& part : reduce_out) {
    result.output.insert(result.output.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  return result;
}

}  // namespace vhadoop::mapreduce

#include "mapreduce/local_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "mapreduce/thread_pool.hpp"

namespace vhadoop::mapreduce {

LocalJobRunner::LocalJobRunner(unsigned threads)
    : threads_(threads == 0 ? default_threads() : threads) {}

void sort_by_key(std::vector<KV>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const KV& a, const KV& b) { return a.key < b.key; });
}

std::vector<KV> reduce_sorted(Reducer& reducer, std::span<const KV> sorted) {
  Context ctx;
  reducer.setup(ctx);
  std::size_t i = 0;
  std::vector<std::string_view> values;
  while (i < sorted.size()) {
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    reducer.reduce(sorted[i].key, values, ctx);
    i = j;
  }
  reducer.cleanup(ctx);
  return ctx.take_output();
}

namespace {

struct MapTaskOutput {
  std::vector<std::vector<KV>> partitions;  // [reduce] -> records (sorted)
  TaskProfile profile;
};

double modeled_cpu(const CostModel& c, std::int64_t in_records, double in_bytes,
                   std::int64_t out_records, double out_bytes, bool is_map) {
  const double per_record = is_map ? c.map_cpu_per_record : c.reduce_cpu_per_record;
  const double per_byte = is_map ? c.map_cpu_per_byte : c.reduce_cpu_per_byte;
  // Input drives the dominant term; emitted data costs the same rates again
  // (serialization + sort feeding).
  return c.task_cpu_fixed + per_record * static_cast<double>(in_records) +
         per_byte * in_bytes + 0.5 * (per_record * static_cast<double>(out_records) +
                                      per_byte * out_bytes);
}

}  // namespace

JobResult LocalJobRunner::run(const JobSpec& spec, std::span<const KV> input,
                              int num_splits) const {
  if (!spec.mapper) throw std::invalid_argument("JobSpec: missing mapper factory");
  if (!spec.reducer) throw std::invalid_argument("JobSpec: missing reducer factory");
  if (spec.config.use_combiner && !spec.combiner) {
    throw std::invalid_argument("JobSpec: use_combiner set but no combiner factory");
  }
  const int R = spec.config.num_reduces;
  if (R < 1) throw std::invalid_argument("JobSpec: num_reduces < 1");

  int S = num_splits > 0 ? num_splits : static_cast<int>(threads_);
  S = std::max(1, std::min<int>(S, input.empty() ? 1 : static_cast<int>(input.size())));

  const Partitioner partition =
      spec.partitioner ? spec.partitioner
                       : Partitioner([](std::string_view k, int r) { return default_partition(k, r); });

  // --- map phase -----------------------------------------------------------
  std::vector<MapTaskOutput> map_out(static_cast<std::size_t>(S));
  const std::size_t n = input.size();
  parallel_for(static_cast<std::size_t>(S), threads_, [&](std::size_t m) {
    const std::size_t lo = n * m / static_cast<std::size_t>(S);
    const std::size_t hi = n * (m + 1) / static_cast<std::size_t>(S);
    auto split = input.subspan(lo, hi - lo);

    auto mapper = spec.mapper();
    Context ctx;
    mapper->setup(ctx);
    double in_bytes = 0.0;
    for (const KV& rec : split) {
      in_bytes += static_cast<double>(rec.bytes());
      mapper->map(rec.key, rec.value, ctx);
    }
    mapper->cleanup(ctx);
    std::vector<KV> emitted = ctx.take_output();

    MapTaskOutput& out = map_out[m];
    out.profile.input_records = static_cast<std::int64_t>(split.size());
    out.profile.input_bytes = in_bytes;

    // Partition, sort, optionally combine — the in-memory spill path.
    out.partitions.assign(static_cast<std::size_t>(R), {});
    for (KV& rec : emitted) {
      const int p = partition(rec.key, R);
      if (p < 0 || p >= R) throw std::out_of_range("partitioner returned out-of-range index");
      out.partitions[static_cast<std::size_t>(p)].push_back(std::move(rec));
    }
    for (auto& part : out.partitions) {
      sort_by_key(part);
      if (spec.config.use_combiner && !part.empty()) {
        auto combiner = spec.combiner();
        part = reduce_sorted(*combiner, part);
        sort_by_key(part);  // combiner may emit in any order
      }
      for (const KV& rec : part) {
        ++out.profile.output_records;
        out.profile.output_bytes += static_cast<double>(rec.bytes());
      }
    }
    out.profile.cpu_seconds =
        modeled_cpu(spec.config.cost, out.profile.input_records, out.profile.input_bytes,
                    out.profile.output_records, out.profile.output_bytes, /*is_map=*/true);
  });

  // --- shuffle accounting ----------------------------------------------------
  JobResult result;
  result.shuffle_matrix.assign(static_cast<std::size_t>(S),
                               std::vector<double>(static_cast<std::size_t>(R), 0.0));
  for (int m = 0; m < S; ++m) {
    for (int r = 0; r < R; ++r) {
      double bytes = 0.0;
      for (const KV& rec : map_out[static_cast<std::size_t>(m)].partitions[static_cast<std::size_t>(r)]) {
        bytes += static_cast<double>(rec.bytes());
      }
      result.shuffle_matrix[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)] = bytes;
      result.total_shuffle_bytes += bytes;
    }
  }

  // --- reduce phase ----------------------------------------------------------
  std::vector<std::vector<KV>> reduce_out(static_cast<std::size_t>(R));
  std::vector<TaskProfile> reduce_profiles(static_cast<std::size_t>(R));
  parallel_for(static_cast<std::size_t>(R), threads_, [&](std::size_t r) {
    // Merge the sorted segments from every map (Hadoop's merge phase);
    // segments are already sorted so a stable sort of the concatenation is
    // equivalent to the k-way merge.
    std::vector<KV> merged;
    TaskProfile& prof = reduce_profiles[r];
    for (int m = 0; m < S; ++m) {
      const auto& part = map_out[static_cast<std::size_t>(m)].partitions[r];
      prof.input_records += static_cast<std::int64_t>(part.size());
      for (const KV& rec : part) prof.input_bytes += static_cast<double>(rec.bytes());
      merged.insert(merged.end(), part.begin(), part.end());
    }
    sort_by_key(merged);

    auto reducer = spec.reducer();
    reduce_out[r] = reduce_sorted(*reducer, merged);
    for (const KV& rec : reduce_out[r]) {
      ++prof.output_records;
      prof.output_bytes += static_cast<double>(rec.bytes());
    }
    prof.cpu_seconds = modeled_cpu(spec.config.cost, prof.input_records, prof.input_bytes,
                                   prof.output_records, prof.output_bytes, /*is_map=*/false);
  });

  for (auto& m : map_out) result.map_profiles.push_back(m.profile);
  result.reduce_profiles = std::move(reduce_profiles);
  for (auto& part : reduce_out) {
    result.output.insert(result.output.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  return result;
}

}  // namespace vhadoop::mapreduce

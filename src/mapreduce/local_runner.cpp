#include "mapreduce/local_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "mapreduce/kv_batch.hpp"
#include "mapreduce/parallel_sort.hpp"
#include "mapreduce/thread_pool.hpp"

namespace vhadoop::mapreduce {

namespace {

bool reference_mode_from_env() {
  // vlint: allow(no-os-entropy) audited PR 8: opt-in oracle switch; both modes produce byte-identical job results, verified by the runner equivalence suite
  const char* v = std::getenv("VHADOOP_RUNNER_REFERENCE");
  return v != nullptr && *v != '\0' && *v != '0';
}

}  // namespace

LocalJobRunner::LocalJobRunner(unsigned threads)
    : LocalJobRunner(threads, reference_mode_from_env(), RunnerTuning{}) {}

LocalJobRunner::LocalJobRunner(unsigned threads, bool reference)
    : LocalJobRunner(threads, reference, RunnerTuning{}) {}

LocalJobRunner::LocalJobRunner(unsigned threads, const RunnerTuning& tuning)
    : LocalJobRunner(threads, reference_mode_from_env(), tuning) {}

LocalJobRunner::LocalJobRunner(unsigned threads, bool reference, const RunnerTuning& tuning)
    : threads_(threads == 0 ? default_threads() : threads),
      reference_(reference),
      tuning_(tuning),
      pool_(std::make_unique<WorkerPool>(threads_)) {}

LocalJobRunner::~LocalJobRunner() = default;
LocalJobRunner::LocalJobRunner(LocalJobRunner&&) noexcept = default;
LocalJobRunner& LocalJobRunner::operator=(LocalJobRunner&&) noexcept = default;

void sort_by_key(std::vector<KV>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const KV& a, const KV& b) { return a.key < b.key; });
}

std::vector<KV> reduce_sorted(Reducer& reducer, std::span<const KV> sorted) {
  Context ctx;
  reducer.setup(ctx);
  std::size_t i = 0;
  std::vector<std::string_view> values;
  while (i < sorted.size()) {
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    reducer.reduce(sorted[i].key, values, ctx);
    i = j;
  }
  reducer.cleanup(ctx);
  return ctx.take_output();
}

namespace {

double modeled_cpu(const CostModel& c, std::int64_t in_records, double in_bytes,
                   std::int64_t out_records, double out_bytes, bool is_map) {
  const double per_record = is_map ? c.map_cpu_per_record : c.reduce_cpu_per_record;
  const double per_byte = is_map ? c.map_cpu_per_byte : c.reduce_cpu_per_byte;
  // Input drives the dominant term; emitted data costs the same rates again
  // (serialization + sort feeding).
  return c.task_cpu_fixed + per_record * static_cast<double>(in_records) +
         per_byte * in_bytes + 0.5 * (per_record * static_cast<double>(out_records) +
                                      per_byte * out_bytes);
}

int clamp_splits(int num_splits, unsigned threads, std::size_t input_size) {
  int s = num_splits > 0 ? num_splits : static_cast<int>(threads);
  return std::max(1, std::min<int>(s, input_size == 0 ? 1 : static_cast<int>(input_size)));
}

Partitioner effective_partitioner(const JobSpec& spec) {
  return spec.partitioner
             ? spec.partitioner
             : Partitioner([](std::string_view k, int r) { return default_partition(k, r); });
}

/// Group a key-sorted entry run (equal keys are adjacent) and feed each
/// group to `reducer`, collecting output in `ctx`. The equality test uses
/// the 8-byte prefix as a cheap pre-filter before the full key compare.
void reduce_entries_into(Reducer& reducer, std::span<const KVBatch::Entry> sorted, Context& ctx) {
  reducer.setup(ctx);
  std::size_t i = 0;
  std::vector<std::string_view> values;
  while (i < sorted.size()) {
    const KVBatch::Entry& first = sorted[i];
    const std::string_view key = first.key();
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].prefix == first.prefix && sorted[j].key() == key) {
      values.push_back(sorted[j].value());
      ++j;
    }
    reducer.reduce(key, values, ctx);
    i = j;
  }
  reducer.cleanup(ctx);
}

// --- reference path (VHADOOP_RUNNER_REFERENCE=1 oracle) ---------------------

struct MapTaskOutput {
  std::vector<std::vector<KV>> partitions;  // [reduce] -> records (sorted)
  TaskProfile profile;
  std::int64_t emit_records = 0;
  std::int64_t emit_bytes = 0;
};

// --- optimized path (arena-backed, default) ---------------------------------

struct OptMapOutput {
  KVBatch arena;                                    // owns all mapper-emitted bytes
  std::vector<KVBatch> combined;                    // [reduce] combiner output arenas
  std::vector<std::vector<KVBatch::Entry>> parts;   // [reduce] -> sorted entries
  std::vector<double> part_bytes;                   // [reduce] -> shuffle bytes
  TaskProfile profile;
  std::int64_t emit_records = 0;
  std::int64_t emit_bytes = 0;
  std::int64_t sort_comparisons = 0;
  std::int64_t arena_chunks = 0;
};

/// One spill-sort work unit: a partition plus the flat slot its comparison
/// tally is accumulated into (slots are summed in fixed order afterwards,
/// so the gated counters never depend on the execution schedule).
struct SortUnit {
  std::vector<KVBatch::Entry>* part;
  std::size_t slot;
};

/// Sort every partition in `units`. Partitions at or under `threshold`
/// entries stay serial and are batched across the pool (one unit per
/// partition); larger ones run one at a time at top level so the run-split
/// parallel sort can use the pool *inside* the partition. Classification is
/// by size only — a pure data function — and either route produces the
/// comparison count of the same run_split_count structure, so counters are
/// identical across thread counts.
void sort_partition_units(const std::vector<SortUnit>& units, std::vector<std::int64_t>& comps,
                          std::size_t threshold, WorkerPool& pool) {
  std::vector<std::size_t> small_units, large_units;
  for (std::size_t u = 0; u < units.size(); ++u) {
    (units[u].part->size() <= threshold ? small_units : large_units).push_back(u);
  }
  pool.parallel_for(small_units.size(), [&](std::size_t si) {
    const SortUnit& unit = units[small_units[si]];
    comps[unit.slot] += sort_entries(*unit.part);
  });
  for (const std::size_t u : large_units) {
    const SortUnit& unit = units[u];
    comps[unit.slot] +=
        parallel_sort_entries(unit.part->data(), unit.part->size(), threshold, pool);
  }
}

}  // namespace

JobResult LocalJobRunner::run(const JobSpec& spec, std::span<const KV> input,
                              int num_splits) const {
  if (!spec.mapper) throw std::invalid_argument("JobSpec: missing mapper factory");
  if (!spec.reducer) throw std::invalid_argument("JobSpec: missing reducer factory");
  if (spec.config.use_combiner && !spec.combiner) {
    throw std::invalid_argument("JobSpec: use_combiner set but no combiner factory");
  }
  if (spec.config.num_reduces < 1) throw std::invalid_argument("JobSpec: num_reduces < 1");
  if (reference_) return run_reference(spec, input, num_splits);
  // Fast-path routing: jobs whose total input fits under the byte threshold
  // take the fully serial single-pass route (no worker wake-up, no counting
  // pass). The scan early-exits at the threshold, so big inputs pay O(1)
  // records here. Routing depends only on data + config — a given job takes
  // the same route at every thread count, and both routes produce identical
  // results, profiles, and counters anyway (tested).
  const auto fast_limit = static_cast<std::size_t>(tuning_.small_job_fast_path_bytes);
  std::size_t scanned = 0;
  bool small_job = true;
  for (const KV& rec : input) {
    scanned += rec.bytes();
    if (scanned > fast_limit) {
      small_job = false;
      break;
    }
  }
  return small_job ? run_optimized_small(spec, input, num_splits)
                   : run_optimized(spec, input, num_splits);
}

JobResult LocalJobRunner::run_optimized(const JobSpec& spec, std::span<const KV> input,
                                        int num_splits) const {
  const int R = spec.config.num_reduces;
  const int S = clamp_splits(num_splits, threads_, input.size());
  const auto uR = static_cast<std::size_t>(R);
  const auto uS = static_cast<std::size_t>(S);
  // The default HashPartitioner is called once per emitted record; dispatch
  // to it directly (inlined) instead of through a std::function unless the
  // job installed a custom partitioner.
  const bool custom_partitioner = static_cast<bool>(spec.partitioner);
  const Partitioner partition = effective_partitioner(spec);
  const auto sort_threshold = static_cast<std::size_t>(tuning_.sort_parallel_threshold);
  const auto merge_min = static_cast<std::size_t>(tuning_.merge_range_split_min);
  WorkerPool& pool = *pool_;

  // --- phase A: map + partition --------------------------------------------
  // One arena per map task; partition lists hold 24-byte entries, so the
  // partition -> sort -> combine pipeline never copies key/value payloads.
  // Sorting is deliberately NOT done here: hoisting it into its own flat
  // phase (B) lets a huge partition use the whole pool instead of being
  // stuck inside one map task's slot (DESIGN.md §15).
  std::vector<OptMapOutput> map_out(uS);
  const std::size_t n = input.size();
  pool.parallel_for(uS, [&](std::size_t m) {
    const std::size_t lo = n * m / uS;
    const std::size_t hi = n * (m + 1) / uS;
    auto split = input.subspan(lo, hi - lo);

    auto mapper = spec.mapper();
    Context ctx;
    mapper->setup(ctx);
    double in_bytes = 0.0;
    for (const KV& rec : split) {
      in_bytes += static_cast<double>(rec.bytes());
      mapper->map(rec.key, rec.value, ctx);
    }
    mapper->cleanup(ctx);

    OptMapOutput& out = map_out[m];
    out.arena = ctx.take_batch();
    out.emit_records = static_cast<std::int64_t>(out.arena.size());
    out.emit_bytes = static_cast<std::int64_t>(out.arena.total_bytes());
    out.arena_chunks = out.arena.chunks_allocated();
    out.profile.input_records = static_cast<std::int64_t>(split.size());
    out.profile.input_bytes = in_bytes;

    // Partition entries (not records) and account shuffle bytes in the same
    // pass — the reference path re-walks every record for the byte totals.
    // Each entry's slot is computed once into `slot`, counted, and the
    // partition lists reserved exactly: no growth reallocations and no
    // second hash pass.
    const auto entries = out.arena.entries();
    std::vector<std::uint32_t> slot(entries.size());
    std::vector<std::size_t> counts(uR, 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::string_view key = entries[i].key();
      const int p = custom_partitioner ? partition(key, R) : default_partition(key, R);
      if (p < 0 || p >= R) throw std::out_of_range("partitioner returned out-of-range index");
      slot[i] = static_cast<std::uint32_t>(p);
      ++counts[static_cast<std::size_t>(p)];
    }
    out.parts.assign(uR, {});
    out.part_bytes.assign(uR, 0.0);
    for (std::size_t r = 0; r < uR; ++r) out.parts[r].reserve(counts[r]);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out.parts[slot[i]].push_back(entries[i]);
      out.part_bytes[slot[i]] += static_cast<double>(entries[i].bytes());
    }
    if (spec.config.use_combiner) out.combined.resize(uR);
  });

  // --- phase B: spill sorts ------------------------------------------------
  // All S*R partitions as one flat unit list: small ones batch across the
  // pool, oversized ones get the run-split parallel sort. Comparison slots
  // are per-(m,p) and summed per map task in p order below, so the gated
  // totals match any execution order.
  std::vector<std::int64_t> sort_comps(uS * uR, 0);
  std::vector<std::int64_t> combiner_chunks(uS * uR, 0);
  {
    std::vector<SortUnit> units;
    units.reserve(uS * uR);
    for (std::size_t m = 0; m < uS; ++m) {
      for (std::size_t p = 0; p < uR; ++p) {
        if (!map_out[m].parts[p].empty()) units.push_back({&map_out[m].parts[p], m * uR + p});
      }
    }
    sort_partition_units(units, sort_comps, sort_threshold, pool);
  }

  // --- phase C: combiner ---------------------------------------------------
  if (spec.config.use_combiner) {
    std::vector<std::pair<std::size_t, std::size_t>> cunits;  // (m, p), non-empty only
    for (std::size_t m = 0; m < uS; ++m) {
      for (std::size_t p = 0; p < uR; ++p) {
        if (!map_out[m].parts[p].empty()) cunits.push_back({m, p});
      }
    }
    pool.parallel_for(cunits.size(), [&](std::size_t c) {
      const auto [m, p] = cunits[c];
      auto& part = map_out[m].parts[p];
      auto combiner = spec.combiner();
      Context cctx;
      reduce_entries_into(*combiner, part, cctx);
      map_out[m].combined[p] = cctx.take_batch();
      const KVBatch& cb = map_out[m].combined[p];
      combiner_chunks[m * uR + p] = cb.chunks_allocated();
      part.assign(cb.entries().begin(), cb.entries().end());
      map_out[m].part_bytes[p] = static_cast<double>(cb.total_bytes());
    });
    // Combiners may emit in any order: re-sort through the same routed
    // machinery (slots accumulate on top of the spill-sort counts).
    std::vector<SortUnit> units;
    units.reserve(cunits.size());
    for (const auto& [m, p] : cunits) {
      if (!map_out[m].parts[p].empty()) units.push_back({&map_out[m].parts[p], m * uR + p});
    }
    sort_partition_units(units, sort_comps, sort_threshold, pool);
  }

  // --- phase D: map profiles -----------------------------------------------
  // Same accumulation order as the reference path: partitions in p order,
  // entries in order, so the double sums are exactly equal.
  pool.parallel_for(uS, [&](std::size_t m) {
    OptMapOutput& out = map_out[m];
    for (std::size_t p = 0; p < uR; ++p) {
      for (const KVBatch::Entry& e : out.parts[p]) {
        ++out.profile.output_records;
        out.profile.output_bytes += static_cast<double>(e.bytes());
      }
      out.sort_comparisons += sort_comps[m * uR + p];
      out.arena_chunks += combiner_chunks[m * uR + p];
    }
    out.profile.cpu_seconds =
        modeled_cpu(spec.config.cost, out.profile.input_records, out.profile.input_bytes,
                    out.profile.output_records, out.profile.output_bytes, /*is_map=*/true);
  });

  // --- shuffle accounting --------------------------------------------------
  // Byte totals were accumulated during partitioning; both paths sum the
  // same integral record sizes, so the doubles are exactly equal.
  JobResult result;
  result.shuffle_matrix.assign(uS, std::vector<double>(uR, 0.0));
  for (std::size_t m = 0; m < uS; ++m) {
    for (std::size_t r = 0; r < uR; ++r) {
      result.shuffle_matrix[m][r] = map_out[m].part_bytes[r];
      result.total_shuffle_bytes += map_out[m].part_bytes[r];
    }
  }

  // --- phase E: reduce merges ----------------------------------------------
  // True k-way merge of the per-map sorted runs; ties resolve to the earlier
  // map then within-run order, which is exactly the order the reference
  // path's stable sort of the concatenation produces. Small merges batch
  // across the pool; a merge over more than merge_range_split_min entries
  // runs at top level so the prefix-range parallel merge can use the pool —
  // one huge partition no longer serializes the reduce side.
  std::vector<std::vector<KVBatch::Entry>> merged(uR);
  std::vector<TaskProfile> reduce_profiles(uR);
  std::vector<std::int64_t> merge_comparisons(uR, 0);
  {
    std::vector<std::size_t> reduce_total(uR, 0);
    for (std::size_t r = 0; r < uR; ++r) {
      for (std::size_t m = 0; m < uS; ++m) reduce_total[r] += map_out[m].parts[r].size();
    }
    auto merge_one = [&](std::size_t r) {
      TaskProfile& prof = reduce_profiles[r];
      std::vector<std::span<const KVBatch::Entry>> runs;
      runs.reserve(uS);
      for (std::size_t m = 0; m < uS; ++m) {
        const auto& part = map_out[m].parts[r];
        prof.input_records += static_cast<std::int64_t>(part.size());
        prof.input_bytes += map_out[m].part_bytes[r];
        runs.push_back(part);
      }
      merge_comparisons[r] = parallel_merge_runs(runs, merged[r], merge_min, pool);
      // The per-map runs for this reduce are dead now; release them so the
      // peak footprint is merged + arenas, not 2x the entry arrays.
      for (std::size_t m = 0; m < uS; ++m) {
        auto& part = map_out[m].parts[r];
        part.clear();
        part.shrink_to_fit();
      }
    };
    std::vector<std::size_t> small_r, large_r;
    for (std::size_t r = 0; r < uR; ++r) {
      (reduce_total[r] <= merge_min ? small_r : large_r).push_back(r);
    }
    pool.parallel_for(small_r.size(), [&](std::size_t i) { merge_one(small_r[i]); });
    for (const std::size_t r : large_r) merge_one(r);
  }

  // --- phase F: reduce user code -------------------------------------------
  std::vector<std::vector<KV>> reduce_out(uR);
  pool.parallel_for(uR, [&](std::size_t r) {
    TaskProfile& prof = reduce_profiles[r];
    auto reducer = spec.reducer();
    Context ctx;
    // Reduce output becomes JobResult::output (owning strings): materialize
    // directly rather than round-tripping every record through an arena.
    ctx.materialize_direct();
    ctx.reserve(merged[r].size());
    reduce_entries_into(*reducer, merged[r], ctx);
    reduce_out[r] = ctx.take_output();
    for (const KV& rec : reduce_out[r]) {
      ++prof.output_records;
      prof.output_bytes += static_cast<double>(rec.bytes());
    }
    prof.cpu_seconds = modeled_cpu(spec.config.cost, prof.input_records, prof.input_bytes,
                                   prof.output_records, prof.output_bytes, /*is_map=*/false);
  });

  // Aggregate stats sequentially so the totals are deterministic.
  for (const OptMapOutput& m : map_out) {
    result.map_profiles.push_back(m.profile);
    result.stats.map_emit_records += m.emit_records;
    result.stats.map_emit_bytes += m.emit_bytes;
    result.stats.sort_comparisons += m.sort_comparisons;
    result.stats.arena_chunks += m.arena_chunks;
  }
  for (std::size_t r = 0; r < uR; ++r) {
    result.stats.shuffle_records += reduce_profiles[r].input_records;
    result.stats.merge_comparisons += merge_comparisons[r];
  }
  result.reduce_profiles = std::move(reduce_profiles);
  for (auto& part : reduce_out) {
    result.output.insert(result.output.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  return result;
}

JobResult LocalJobRunner::run_optimized_small(const JobSpec& spec, std::span<const KV> input,
                                              int num_splits) const {
  // Serial single-pass route for small jobs: same dataflow, same arenas,
  // same sort/merge structure (so results, profiles, and counters are
  // identical to run_optimized on the same input — tested), but no worker
  // wake-up, no flat phase bookkeeping, and partitioning pushes entries in
  // one pass instead of count + reserve + fill.
  const int R = spec.config.num_reduces;
  const int S = clamp_splits(num_splits, threads_, input.size());
  const auto uR = static_cast<std::size_t>(R);
  const auto uS = static_cast<std::size_t>(S);
  const bool custom_partitioner = static_cast<bool>(spec.partitioner);
  const Partitioner partition = effective_partitioner(spec);
  const auto sort_threshold = static_cast<std::size_t>(tuning_.sort_parallel_threshold);
  const auto merge_min = static_cast<std::size_t>(tuning_.merge_range_split_min);
  WorkerPool& pool = *pool_;

  std::vector<OptMapOutput> map_out(uS);
  const std::size_t n = input.size();
  for (std::size_t m = 0; m < uS; ++m) {
    const std::size_t lo = n * m / uS;
    const std::size_t hi = n * (m + 1) / uS;
    auto split = input.subspan(lo, hi - lo);

    auto mapper = spec.mapper();
    Context ctx;
    mapper->setup(ctx);
    double in_bytes = 0.0;
    for (const KV& rec : split) {
      in_bytes += static_cast<double>(rec.bytes());
      mapper->map(rec.key, rec.value, ctx);
    }
    mapper->cleanup(ctx);

    OptMapOutput& out = map_out[m];
    out.arena = ctx.take_batch();
    out.emit_records = static_cast<std::int64_t>(out.arena.size());
    out.emit_bytes = static_cast<std::int64_t>(out.arena.total_bytes());
    out.arena_chunks = out.arena.chunks_allocated();
    out.profile.input_records = static_cast<std::int64_t>(split.size());
    out.profile.input_bytes = in_bytes;

    // Single-pass partition: push each entry straight into its partition,
    // accounting shuffle bytes as we go. Entry order per partition — and so
    // every downstream byte sum — matches the counting path exactly.
    const auto entries = out.arena.entries();
    out.parts.assign(uR, {});
    out.part_bytes.assign(uR, 0.0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const std::string_view key = entries[i].key();
      const int p = custom_partitioner ? partition(key, R) : default_partition(key, R);
      if (p < 0 || p >= R) throw std::out_of_range("partitioner returned out-of-range index");
      out.parts[static_cast<std::size_t>(p)].push_back(entries[i]);
      out.part_bytes[static_cast<std::size_t>(p)] += static_cast<double>(entries[i].bytes());
    }
    if (spec.config.use_combiner) out.combined.resize(uR);
    for (std::size_t p = 0; p < uR; ++p) {
      auto& part = out.parts[p];
      // parallel_sort_entries inlines for small partitions (K == 1 below the
      // threshold) and only engages the pool if a tiny input amplified into
      // a huge spill — either way the count matches run_optimized's.
      out.sort_comparisons += parallel_sort_entries(part.data(), part.size(), sort_threshold, pool);
      if (spec.config.use_combiner && !part.empty()) {
        auto combiner = spec.combiner();
        Context cctx;
        reduce_entries_into(*combiner, part, cctx);
        out.combined[p] = cctx.take_batch();
        const KVBatch& cb = out.combined[p];
        out.arena_chunks += cb.chunks_allocated();
        part.assign(cb.entries().begin(), cb.entries().end());
        out.sort_comparisons +=
            parallel_sort_entries(part.data(), part.size(), sort_threshold, pool);
        out.part_bytes[p] = static_cast<double>(cb.total_bytes());
      }
      for (const KVBatch::Entry& e : part) {
        ++out.profile.output_records;
        out.profile.output_bytes += static_cast<double>(e.bytes());
      }
    }
    out.profile.cpu_seconds =
        modeled_cpu(spec.config.cost, out.profile.input_records, out.profile.input_bytes,
                    out.profile.output_records, out.profile.output_bytes, /*is_map=*/true);
  }

  JobResult result;
  result.shuffle_matrix.assign(uS, std::vector<double>(uR, 0.0));
  for (std::size_t m = 0; m < uS; ++m) {
    for (std::size_t r = 0; r < uR; ++r) {
      result.shuffle_matrix[m][r] = map_out[m].part_bytes[r];
      result.total_shuffle_bytes += map_out[m].part_bytes[r];
    }
  }

  std::vector<std::vector<KV>> reduce_out(uR);
  std::vector<TaskProfile> reduce_profiles(uR);
  std::vector<std::int64_t> merge_comparisons(uR, 0);
  for (std::size_t r = 0; r < uR; ++r) {
    TaskProfile& prof = reduce_profiles[r];
    std::vector<std::span<const KVBatch::Entry>> runs;
    runs.reserve(uS);
    for (std::size_t m = 0; m < uS; ++m) {
      const auto& part = map_out[m].parts[r];
      prof.input_records += static_cast<std::int64_t>(part.size());
      prof.input_bytes += map_out[m].part_bytes[r];
      runs.push_back(part);
    }
    std::vector<KVBatch::Entry> merged;
    // Routes to the serial heap merge below merge_min, same as the big path.
    merge_comparisons[r] = parallel_merge_runs(runs, merged, merge_min, pool);

    auto reducer = spec.reducer();
    Context ctx;
    ctx.materialize_direct();
    ctx.reserve(merged.size());
    reduce_entries_into(*reducer, merged, ctx);
    reduce_out[r] = ctx.take_output();
    for (const KV& rec : reduce_out[r]) {
      ++prof.output_records;
      prof.output_bytes += static_cast<double>(rec.bytes());
    }
    prof.cpu_seconds = modeled_cpu(spec.config.cost, prof.input_records, prof.input_bytes,
                                   prof.output_records, prof.output_bytes, /*is_map=*/false);
  }

  for (const OptMapOutput& m : map_out) {
    result.map_profiles.push_back(m.profile);
    result.stats.map_emit_records += m.emit_records;
    result.stats.map_emit_bytes += m.emit_bytes;
    result.stats.sort_comparisons += m.sort_comparisons;
    result.stats.arena_chunks += m.arena_chunks;
  }
  for (std::size_t r = 0; r < uR; ++r) {
    result.stats.shuffle_records += reduce_profiles[r].input_records;
    result.stats.merge_comparisons += merge_comparisons[r];
  }
  result.reduce_profiles = std::move(reduce_profiles);
  for (auto& part : reduce_out) {
    result.output.insert(result.output.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  return result;
}

JobResult LocalJobRunner::run_reference(const JobSpec& spec, std::span<const KV> input,
                                        int num_splits) const {
  const int R = spec.config.num_reduces;
  const int S = clamp_splits(num_splits, threads_, input.size());
  const Partitioner partition = effective_partitioner(spec);

  // --- map phase -----------------------------------------------------------
  std::vector<MapTaskOutput> map_out(static_cast<std::size_t>(S));
  const std::size_t n = input.size();
  parallel_for(static_cast<std::size_t>(S), threads_, [&](std::size_t m) {
    const std::size_t lo = n * m / static_cast<std::size_t>(S);
    const std::size_t hi = n * (m + 1) / static_cast<std::size_t>(S);
    auto split = input.subspan(lo, hi - lo);

    auto mapper = spec.mapper();
    Context ctx;
    mapper->setup(ctx);
    double in_bytes = 0.0;
    for (const KV& rec : split) {
      in_bytes += static_cast<double>(rec.bytes());
      mapper->map(rec.key, rec.value, ctx);
    }
    mapper->cleanup(ctx);
    MapTaskOutput& out = map_out[m];
    out.emit_records = static_cast<std::int64_t>(ctx.emitted_records());
    out.emit_bytes = static_cast<std::int64_t>(ctx.emitted_bytes());
    std::vector<KV> emitted = ctx.take_output();

    out.profile.input_records = static_cast<std::int64_t>(split.size());
    out.profile.input_bytes = in_bytes;

    // Partition, sort, optionally combine — the in-memory spill path.
    out.partitions.assign(static_cast<std::size_t>(R), {});
    for (KV& rec : emitted) {
      const int p = partition(rec.key, R);
      if (p < 0 || p >= R) throw std::out_of_range("partitioner returned out-of-range index");
      out.partitions[static_cast<std::size_t>(p)].push_back(std::move(rec));
    }
    for (auto& part : out.partitions) {
      sort_by_key(part);
      if (spec.config.use_combiner && !part.empty()) {
        auto combiner = spec.combiner();
        part = reduce_sorted(*combiner, part);
        sort_by_key(part);  // combiner may emit in any order
      }
      for (const KV& rec : part) {
        ++out.profile.output_records;
        out.profile.output_bytes += static_cast<double>(rec.bytes());
      }
    }
    out.profile.cpu_seconds =
        modeled_cpu(spec.config.cost, out.profile.input_records, out.profile.input_bytes,
                    out.profile.output_records, out.profile.output_bytes, /*is_map=*/true);
  });

  // --- shuffle accounting --------------------------------------------------
  JobResult result;
  result.shuffle_matrix.assign(static_cast<std::size_t>(S),
                               std::vector<double>(static_cast<std::size_t>(R), 0.0));
  for (int m = 0; m < S; ++m) {
    for (int r = 0; r < R; ++r) {
      double bytes = 0.0;
      for (const KV& rec : map_out[static_cast<std::size_t>(m)].partitions[static_cast<std::size_t>(r)]) {
        bytes += static_cast<double>(rec.bytes());
      }
      result.shuffle_matrix[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)] = bytes;
      result.total_shuffle_bytes += bytes;
    }
  }

  // --- reduce phase --------------------------------------------------------
  std::vector<std::vector<KV>> reduce_out(static_cast<std::size_t>(R));
  std::vector<TaskProfile> reduce_profiles(static_cast<std::size_t>(R));
  parallel_for(static_cast<std::size_t>(R), threads_, [&](std::size_t r) {
    // Merge the sorted segments from every map (Hadoop's merge phase);
    // segments are already sorted so a stable sort of the concatenation is
    // equivalent to the k-way merge.
    std::vector<KV> merged;
    TaskProfile& prof = reduce_profiles[r];
    for (int m = 0; m < S; ++m) {
      const auto& part = map_out[static_cast<std::size_t>(m)].partitions[r];
      prof.input_records += static_cast<std::int64_t>(part.size());
      for (const KV& rec : part) prof.input_bytes += static_cast<double>(rec.bytes());
      merged.insert(merged.end(), part.begin(), part.end());
    }
    sort_by_key(merged);

    auto reducer = spec.reducer();
    reduce_out[r] = reduce_sorted(*reducer, merged);
    for (const KV& rec : reduce_out[r]) {
      ++prof.output_records;
      prof.output_bytes += static_cast<double>(rec.bytes());
    }
    prof.cpu_seconds = modeled_cpu(spec.config.cost, prof.input_records, prof.input_bytes,
                                   prof.output_records, prof.output_bytes, /*is_map=*/false);
  });

  // Mode-independent stats only: the reference path has no entry sorts,
  // k-way merge, or arenas to count (DataPathStats doc in job.hpp).
  for (const MapTaskOutput& m : map_out) {
    result.map_profiles.push_back(m.profile);
    result.stats.map_emit_records += m.emit_records;
    result.stats.map_emit_bytes += m.emit_bytes;
  }
  for (const TaskProfile& prof : reduce_profiles) {
    result.stats.shuffle_records += prof.input_records;
  }
  result.reduce_profiles = std::move(reduce_profiles);
  for (auto& part : reduce_out) {
    result.output.insert(result.output.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
  }
  return result;
}

}  // namespace vhadoop::mapreduce

#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::mapreduce {

/// A job as the simulated cluster sees it: sizes and compute costs, either
/// synthesized by a workload model (TeraSort at 1 TB) or measured from a
/// real logical run (the ML algorithms).
struct SimJobSpec {
  std::string name = "job";
  /// Capacity-scheduler queue this job is submitted to (ignored by FIFO and
  /// Fair). Unknown names fall into the first configured queue.
  std::string queue = "default";
  /// Submitting user, for the Capacity scheduler's per-user limits.
  std::string user = "user";

  struct MapTask {
    /// HDFS input: path+block (locality-schedulable). Empty path = the task
    /// reads `input_bytes` from its local (NFS-backed) disk instead.
    /// block_index = -1 streams the whole file (DFSIO/TeraValidate style).
    std::string input_path;
    int block_index = 0;
    double input_bytes = 0.0;  ///< used when input_path is empty
    double cpu_seconds = 0.1;
    double output_bytes = 0.0;  ///< materialized map output (post-combiner)
  };

  struct ReduceTask {
    double cpu_seconds = 0.1;
    double output_bytes = 0.0;  ///< written to HDFS with output replication
  };

  std::vector<MapTask> maps;
  std::vector<ReduceTask> reduces;

  /// shuffle[m][r]: bytes map m feeds reduce r. Empty = split each map's
  /// output uniformly over the reduces.
  std::vector<std::vector<double>> shuffle_matrix;

  /// Map-only jobs (TeraGen, DFSIO-write) write map output straight to
  /// HDFS rather than to local disk.
  bool map_output_to_hdfs = false;
  std::string output_path = "";  ///< HDFS path prefix for outputs

  /// SLO deadline on end-to-end latency (submit → finish), in simulated
  /// seconds; 0 disables. A completed job exceeding it bumps the
  /// mr.queue.<queue>.slo_missed counter, and the Deadline scheduler orders
  /// jobs by it (EDF). Negative or non-finite values are rejected at
  /// submit.
  double deadline_seconds = 0.0;

  /// Scheduling tier for the Deadline policy, 0 (batch) .. 9 (urgent):
  /// higher tiers are served first, EDF breaks ties within a tier. Ignored
  /// by FIFO/Fair/Capacity. Values outside [0, 9] are rejected at submit.
  int priority = 0;

  double shuffle_bytes(std::size_t m, std::size_t r) const {
    if (!shuffle_matrix.empty()) return shuffle_matrix[m][r];
    if (reduces.empty()) return 0.0;
    return maps[m].output_bytes / static_cast<double>(reduces.size());
  }
};

/// Per-task timing as recorded by the simulated JobTracker.
struct TaskTiming {
  virt::VmId vm = 0;
  sim::SimTime assigned = 0.0;
  sim::SimTime started = 0.0;   ///< JVM up, work begins
  sim::SimTime finished = 0.0;
  bool data_local = false;      ///< map read its block from its own VM
};

/// What a simulated job run returns.
struct JobTimeline {
  std::string name;
  sim::SimTime submitted = 0.0;
  /// When the scheduler granted the job its first task slot (equals
  /// `submitted` plus the queue wait; 0 for a job that never ran).
  sim::SimTime first_task_at = 0.0;
  sim::SimTime finished = 0.0;
  /// True when the job was aborted (e.g. every TaskTracker died).
  bool failed = false;
  std::vector<TaskTiming> maps;
  std::vector<TaskTiming> reduces;
  /// Map-output bytes the reducers actually fetched (each (map, reduce)
  /// partition counted once — re-fetches after a reduce restart included).
  double shuffle_fetched_bytes = 0.0;
  double elapsed() const { return finished - submitted; }
  double queue_wait() const { return first_task_at - submitted; }
  /// Execution wall-clock: first task slot to completion. Unlike elapsed()
  /// this excludes time spent queued behind other jobs, so throughput
  /// tools (DFSIO) report the I/O rate, not the scheduler backlog.
  double run_seconds() const {
    return finished - (first_task_at > 0.0 ? first_task_at : submitted);
  }
  int data_local_maps() const {
    int n = 0;
    for (const auto& t : maps) n += t.data_local;
    return n;
  }
};

}  // namespace vhadoop::mapreduce

#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::mapreduce {

/// A job as the simulated cluster sees it: sizes and compute costs, either
/// synthesized by a workload model (TeraSort at 1 TB) or measured from a
/// real logical run (the ML algorithms).
struct SimJobSpec {
  std::string name = "job";

  struct MapTask {
    /// HDFS input: path+block (locality-schedulable). Empty path = the task
    /// reads `input_bytes` from its local (NFS-backed) disk instead.
    /// block_index = -1 streams the whole file (DFSIO/TeraValidate style).
    std::string input_path;
    int block_index = 0;
    double input_bytes = 0.0;  ///< used when input_path is empty
    double cpu_seconds = 0.1;
    double output_bytes = 0.0;  ///< materialized map output (post-combiner)
  };

  struct ReduceTask {
    double cpu_seconds = 0.1;
    double output_bytes = 0.0;  ///< written to HDFS with output replication
  };

  std::vector<MapTask> maps;
  std::vector<ReduceTask> reduces;

  /// shuffle[m][r]: bytes map m feeds reduce r. Empty = split each map's
  /// output uniformly over the reduces.
  std::vector<std::vector<double>> shuffle_matrix;

  /// Map-only jobs (TeraGen, DFSIO-write) write map output straight to
  /// HDFS rather than to local disk.
  bool map_output_to_hdfs = false;
  std::string output_path = "";  ///< HDFS path prefix for outputs

  double shuffle_bytes(std::size_t m, std::size_t r) const {
    if (!shuffle_matrix.empty()) return shuffle_matrix[m][r];
    if (reduces.empty()) return 0.0;
    return maps[m].output_bytes / static_cast<double>(reduces.size());
  }
};

/// Per-task timing as recorded by the simulated JobTracker.
struct TaskTiming {
  virt::VmId vm = 0;
  sim::SimTime assigned = 0.0;
  sim::SimTime started = 0.0;   ///< JVM up, work begins
  sim::SimTime finished = 0.0;
  bool data_local = false;      ///< map read its block from its own VM
};

/// What a simulated job run returns.
struct JobTimeline {
  std::string name;
  sim::SimTime submitted = 0.0;
  sim::SimTime finished = 0.0;
  /// True when the job was aborted (e.g. every TaskTracker died).
  bool failed = false;
  std::vector<TaskTiming> maps;
  std::vector<TaskTiming> reduces;
  double elapsed() const { return finished - submitted; }
  int data_local_maps() const {
    int n = 0;
    for (const auto& t : maps) n += t.data_local;
    return n;
  }
};

}  // namespace vhadoop::mapreduce

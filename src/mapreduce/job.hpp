#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/kv.hpp"

namespace vhadoop::mapreduce {

/// Output collector handed to user map/reduce functions.
class Context {
 public:
  void emit(std::string key, std::string value) {
    bytes_ += key.size() + value.size();
    out_.emplace_back(KV{std::move(key), std::move(value)});
  }

  const std::vector<KV>& output() const { return out_; }
  std::vector<KV> take_output() { return std::move(out_); }
  std::size_t emitted_records() const { return out_.size(); }
  std::size_t emitted_bytes() const { return bytes_; }

 private:
  std::vector<KV> out_;
  std::size_t bytes_ = 0;
};

/// User map function, one instance per map task (Hadoop semantics: state
/// may accumulate across records of one split; `cleanup` may emit).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void setup(Context&) {}
  virtual void map(std::string_view key, std::string_view value, Context& ctx) = 0;
  virtual void cleanup(Context&) {}
};

/// User reduce function; also used as a combiner when configured.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void setup(Context&) {}
  virtual void reduce(std::string_view key, const std::vector<std::string_view>& values,
                      Context& ctx) = 0;
  virtual void cleanup(Context&) {}
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Compute-cost coefficients used to translate a task's real record/byte
/// counts into simulated core-seconds. Per-job because a Dirichlet
/// posterior sample costs far more per record than a Wordcount tokenize.
struct CostModel {
  double map_cpu_per_record = 2e-6;
  double map_cpu_per_byte = 8e-9;
  double reduce_cpu_per_record = 2e-6;
  double reduce_cpu_per_byte = 8e-9;
  /// Fixed per-task compute (input format init, output commit).
  double task_cpu_fixed = 0.05;
};

struct JobConfig {
  std::string name = "job";
  int num_reduces = 1;
  bool use_combiner = false;
  CostModel cost;
};

/// Key -> reduce-partition function (Hadoop Partitioner). Defaults to the
/// stable hash partitioner; TeraSort swaps in a total-order partitioner.
using Partitioner = std::function<int(std::string_view key, int num_reduces)>;

/// A runnable MapReduce job: factories (tasks run in parallel threads, each
/// task gets a fresh instance) plus configuration.
struct JobSpec {
  JobConfig config;
  MapperFactory mapper;
  ReducerFactory reducer;
  ReducerFactory combiner;   // optional; required if config.use_combiner
  Partitioner partitioner;   // optional; default HashPartitioner
};

/// Measured facts about one executed task, fed to the simulated cluster.
struct TaskProfile {
  double input_bytes = 0.0;
  std::int64_t input_records = 0;
  double output_bytes = 0.0;
  std::int64_t output_records = 0;
  double cpu_seconds = 0.0;
};

/// Everything a logical (in-process) job run produces.
struct JobResult {
  /// Reduce outputs concatenated in partition order (keys sorted within
  /// each partition, as Hadoop part-r-* files are).
  std::vector<KV> output;
  std::vector<TaskProfile> map_profiles;
  std::vector<TaskProfile> reduce_profiles;
  /// shuffle_matrix[m][r]: bytes map m sent to reduce r (real skew).
  std::vector<std::vector<double>> shuffle_matrix;
  double total_shuffle_bytes = 0.0;
};

}  // namespace vhadoop::mapreduce

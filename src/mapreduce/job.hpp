#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/kv.hpp"
#include "mapreduce/kv_batch.hpp"

namespace vhadoop::mapreduce {

/// Output collector handed to user map/reduce functions. Emitted records go
/// straight into an arena-backed KVBatch: one bulk byte copy per record
/// instead of two std::string allocations, and value payloads land 8-byte
/// aligned so `decode_vec_view` reads them in place downstream.
///
/// A Context can instead be switched to *direct* mode (`materialize_direct`)
/// before any emit: records then become owning strings immediately. The
/// optimized runner uses this for the final reduce stage, whose output must
/// end up as owning strings in JobResult anyway — emitting through the
/// arena there would be a pure extra copy of every output record.
class Context {
 public:
  void emit(std::string_view key, std::string_view value) {
    if (direct_) {
      direct_bytes_ += key.size() + value.size();
      out_.push_back({std::string(key), std::string(value)});
    } else {
      batch_.push(key, value);
    }
  }

  /// Capacity hint for the expected number of emits (pass-through reducers
  /// emit one record per merged input; see run_optimized's reduce phase).
  void reserve(std::size_t records) {
    if (direct_) out_.reserve(records);
    else batch_.reserve_entries(records);
  }

  /// Emit owning strings from here on (only valid before the first emit).
  void materialize_direct() { direct_ = true; }

  std::size_t emitted_records() const { return direct_ ? out_.size() : batch_.size(); }
  std::size_t emitted_bytes() const { return direct_ ? direct_bytes_ : batch_.total_bytes(); }

  /// Arena-backed output — the optimized data path consumes this directly.
  const KVBatch& batch() const { return batch_; }
  KVBatch take_batch() { return std::move(batch_); }

  /// Materialize records as owning strings (final reduce output, reference
  /// path, tests).
  std::vector<KV> take_output() {
    if (direct_) {
      direct_bytes_ = 0;
      return std::move(out_);
    }
    std::vector<KV> out;
    out.reserve(batch_.size());
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      out.push_back({std::string(batch_.key(i)), std::string(batch_.value(i))});
    }
    batch_.clear();
    return out;
  }

 private:
  KVBatch batch_;
  std::vector<KV> out_;
  std::size_t direct_bytes_ = 0;
  bool direct_ = false;
};

/// User map function, one instance per map task (Hadoop semantics: state
/// may accumulate across records of one split; `cleanup` may emit).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void setup(Context&) {}
  virtual void map(std::string_view key, std::string_view value, Context& ctx) = 0;
  virtual void cleanup(Context&) {}
};

/// User reduce function; also used as a combiner when configured.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void setup(Context&) {}
  virtual void reduce(std::string_view key, const std::vector<std::string_view>& values,
                      Context& ctx) = 0;
  virtual void cleanup(Context&) {}
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Compute-cost coefficients used to translate a task's real record/byte
/// counts into simulated core-seconds. Per-job because a Dirichlet
/// posterior sample costs far more per record than a Wordcount tokenize.
struct CostModel {
  double map_cpu_per_record = 2e-6;
  double map_cpu_per_byte = 8e-9;
  double reduce_cpu_per_record = 2e-6;
  double reduce_cpu_per_byte = 8e-9;
  /// Fixed per-task compute (input format init, output commit).
  double task_cpu_fixed = 0.05;
};

struct JobConfig {
  std::string name = "job";
  int num_reduces = 1;
  bool use_combiner = false;
  CostModel cost;
};

/// Key -> reduce-partition function (Hadoop Partitioner). Defaults to the
/// stable hash partitioner; TeraSort swaps in a total-order partitioner.
using Partitioner = std::function<int(std::string_view key, int num_reduces)>;

/// A runnable MapReduce job: factories (tasks run in parallel threads, each
/// task gets a fresh instance) plus configuration.
struct JobSpec {
  JobConfig config;
  MapperFactory mapper;
  ReducerFactory reducer;
  ReducerFactory combiner;   // optional; required if config.use_combiner
  Partitioner partitioner;   // optional; default HashPartitioner
};

/// Measured facts about one executed task, fed to the simulated cluster.
struct TaskProfile {
  double input_bytes = 0.0;
  std::int64_t input_records = 0;
  double output_bytes = 0.0;
  std::int64_t output_records = 0;
  double cpu_seconds = 0.0;
};

/// Deterministic data-path counters for one job run. All counters are
/// exact functions of the job's records (no clocks, no addresses), so
/// bench/ml_scaling can gate on them machine-independently. The comparison
/// and arena counters come from the repo's own sort/merge/arena code
/// (kv_batch.hpp) and are only meaningful on the optimized path; the
/// reference oracle (VHADOOP_RUNNER_REFERENCE=1) fills just the
/// mode-independent record/byte counters and leaves them zero.
struct DataPathStats {
  std::int64_t map_emit_records = 0;   ///< records emitted by all mappers
  std::int64_t map_emit_bytes = 0;     ///< logical bytes emitted by all mappers
  std::int64_t shuffle_records = 0;    ///< records crossing map->reduce (post-combine)
  std::int64_t sort_comparisons = 0;   ///< map-side spill sorts (incl. combiner re-sorts)
  std::int64_t merge_comparisons = 0;  ///< reduce-side k-way merge
  std::int64_t arena_chunks = 0;       ///< map-side KVBatch chunks (spill + combiner arenas)
};

/// Everything a logical (in-process) job run produces.
struct JobResult {
  /// Reduce outputs concatenated in partition order (keys sorted within
  /// each partition, as Hadoop part-r-* files are).
  std::vector<KV> output;
  std::vector<TaskProfile> map_profiles;
  std::vector<TaskProfile> reduce_profiles;
  /// shuffle_matrix[m][r]: bytes map m sent to reduce r (real skew).
  std::vector<std::vector<double>> shuffle_matrix;
  double total_shuffle_bytes = 0.0;
  DataPathStats stats;
};

}  // namespace vhadoop::mapreduce

#pragma once

#include <span>
#include <string>

#include "mapreduce/job.hpp"
#include "mapreduce/sim_job.hpp"

namespace vhadoop::mapreduce {

/// Convert a *measured* logical run into a simulated job: real per-task
/// record/byte counts and the real (possibly skewed) shuffle matrix become
/// the sizes the virtual cluster moves, and the cost-model CPU estimates
/// become the compute activities. `input_path` must already exist in HDFS
/// with at least as many blocks as the logical run had map tasks.
SimJobSpec to_sim_job(const std::string& name, const JobResult& measured,
                      const std::string& input_path, const std::string& output_path);

/// Variant for many-small-files inputs (one map per file, the classic
/// TextInputFormat shape): map m reads `input_paths[m]` in full.
SimJobSpec to_sim_job_files(const std::string& name, const JobResult& measured,
                            const std::vector<std::string>& input_paths,
                            const std::string& output_path);

/// Total serialized size of a record set — used to size HDFS input files
/// so block counts line up with logical splits.
double serialized_bytes(std::span<const KV> records);

}  // namespace vhadoop::mapreduce

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/fluid.hpp"

namespace vhadoop::net {

/// Which physical fabric joins the nodes (DESIGN.md §14).
enum class TopologyKind {
  /// The paper's testbed: every node one hop from every other behind a
  /// single non-blocking switch. Rack-free; byte-identical to the fabric
  /// model that predates the topology layer.
  SingleSwitch,
  /// Classic datacenter tree: nodes grouped into racks behind ToR switches
  /// whose uplinks into the aggregation/core layers are over-subscribed.
  /// The core is modeled as non-blocking (all over-subscription is
  /// concentrated at the ToR uplink — the standard simplification), so
  /// inter-rack flows share the source rack's uplink and the destination
  /// rack's downlink but no global resource. That is also what keeps the
  /// fluid solver's components rack-scoped instead of cluster-wide.
  FatTree,
  /// Rotor/round-robin optical fabric (Opera-style): each rack gets a
  /// full-bisection uplink/downlink — no over-subscription — but every
  /// inter-rack flow pays a rotor reconfiguration wait on top of the
  /// propagation delay.
  Rotor,
};

/// Shape parameters for the pluggable fabric topology. Validated at
/// construction (see validate()): a zero rack count or non-positive
/// bandwidth-derived capacity would otherwise surface as NaN flow rates
/// deep inside the fluid solver.
struct TopologyConfig {
  TopologyKind kind = TopologyKind::SingleSwitch;
  /// Number of racks. Ignored by SingleSwitch (which is rack-free).
  int racks = 1;
  /// Fabric nodes (hosts + the rack's NFS filer) per rack; drives both
  /// auto rack assignment and the ToR uplink capacity.
  int nodes_per_rack = 16;
  /// Fat-tree over-subscription factor at the ToR uplink: uplink capacity
  /// = nodes_per_rack * nic_bw / oversubscription. 1.0 = full bisection.
  double oversubscription = 4.0;
  /// Mean wait for the rotor switch to cycle to the destination rack,
  /// charged once per inter-rack flow (Rotor only).
  double rotor_cycle_latency = 50e-6;
};

const char* to_string(TopologyKind kind);
/// Parse "single-switch" / "fat-tree" / "rotor" (exact); nullopt otherwise.
std::optional<TopologyKind> topology_kind_from_string(const std::string& s);

/// A fabric topology: owns the shared inter-rack resources, assigns nodes
/// to racks, and answers which extra resources / how much propagation
/// latency a wire (different-node) flow between two nodes needs. Node ids
/// are the Fabric's: attach() is called exactly once per Fabric::add_node,
/// in node-id order.
class Topology {
 public:
  Topology(TopologyConfig config, double hop_latency)
      : config_(config), hop_latency_(hop_latency) {}
  virtual ~Topology() = default;

  virtual const char* name() const = 0;
  virtual int rack_count() const { return config_.racks; }

  /// Register the next node. `rack_hint` >= 0 pins the node to that rack
  /// (per-rack infrastructure such as the NFS filers); -1 auto-assigns by
  /// fill order — nodes_per_rack consecutive auto-attached nodes per rack,
  /// the overflow landing in the last rack. Pinned nodes do not advance
  /// the auto-fill cursor. Returns the rack index.
  int attach(int rack_hint);
  int rack_of(std::size_t node) const { return node_racks_[node]; }

  /// Append the shared inter-node resources a wire flow src -> dst must
  /// traverse (beyond the endpoints' own NICs, which the Fabric adds).
  virtual void append_wire_resources(std::size_t src, std::size_t dst,
                                     std::vector<sim::FluidModel::ResourceId>& out) const = 0;
  /// One-way propagation latency of a wire message src -> dst.
  virtual double wire_latency(std::size_t src, std::size_t dst) const = 0;

  const TopologyConfig& config() const { return config_; }

 protected:
  TopologyConfig config_;
  double hop_latency_;

 private:
  std::vector<int> node_racks_;
  int auto_attached_ = 0;
};

/// Throws std::invalid_argument on a non-positive rack count,
/// nodes-per-rack, over-subscription factor below 1, or (for Rotor) a
/// non-positive cycle latency.
void validate(const TopologyConfig& config);

/// Build the configured topology; per-rack shared resources (ToR uplinks,
/// rotor ports) are created eagerly in rack order, before any node
/// resource, so resource-id assignment is deterministic. Validates first.
std::unique_ptr<Topology> make_topology(sim::FluidModel& model, const TopologyConfig& config,
                                        double nic_bw, double hop_latency);

}  // namespace vhadoop::net

#include "net/fabric.hpp"

#include <stdexcept>
#include <utility>

namespace vhadoop::net {

Fabric::Fabric(sim::Engine& engine, sim::FluidModel& model, NetConfig config)
    : engine_(engine),
      model_(model),
      config_(config),
      flows_started_(engine.metrics().counter("net.flows_started")),
      bytes_requested_(engine.metrics().counter("net.bytes_requested")),
      flows_loopback_(engine.metrics().counter("net.flows_loopback")),
      flows_bridge_(engine.metrics().counter("net.flows_bridge")),
      flows_wire_(engine.metrics().counter("net.flows_wire")) {}

Fabric::NodeId Fabric::add_node(const std::string& name) {
  Node n;
  n.name = name;
  n.tx = model_.add_resource(name + ".tx", config_.nic_bw);
  n.rx = model_.add_resource(name + ".rx", config_.nic_bw);
  n.bridge = model_.add_resource(name + ".bridge", config_.bridge_bw);
  nodes_.push_back(n);
  return nodes_.size() - 1;
}

double Fabric::message_latency(const Endpoint& src, const Endpoint& dst) const {
  double lat = 0.0;
  if (src.virtualized) lat += config_.vm_latency;
  if (dst.virtualized) lat += config_.vm_latency;
  const bool loopback = src.node == dst.node && src.vm == dst.vm && src.vm >= 0;
  if (loopback) return std::max(lat, 5e-6);
  if (src.node != dst.node) lat += config_.hop_latency;
  return lat;
}

void Fabric::transfer(TransferSpec spec) {
  if (spec.src.node >= nodes_.size() || spec.dst.node >= nodes_.size()) {
    throw std::out_of_range("Fabric::transfer: unknown node");
  }
  const double latency = message_latency(spec.src, spec.dst);

  sim::FluidModel::ActivitySpec act;
  act.work = spec.bytes;
  act.weight = spec.weight;
  act.on_complete = std::move(spec.on_complete);
  act.resources = std::move(spec.extra_resources);

  const bool loopback = spec.src.node == spec.dst.node && spec.src.vm == spec.dst.vm &&
                        spec.src.vm >= 0;
  flows_started_->inc();
  bytes_requested_->add(spec.bytes);
  double path_cap = std::numeric_limits<double>::infinity();
  if (loopback) {
    // In-VM copy: no shared fabric resource, just a memory-bandwidth cap.
    path_cap = config_.loopback_bw;
    flows_loopback_->inc();
  } else if (spec.src.node == spec.dst.node) {
    // Same host, different VM: crosses the software bridge once.
    act.resources.push_back(nodes_[spec.src.node].bridge);
    path_cap = config_.bridge_bw;
    flows_bridge_->inc();
  } else {
    act.resources.push_back(nodes_[spec.src.node].tx);
    act.resources.push_back(nodes_[spec.dst.node].rx);
    path_cap = config_.nic_bw;
    flows_wire_->inc();
  }
  if (spec.src.virtualized || spec.dst.virtualized) {
    path_cap *= config_.vm_io_efficiency;
  }
  act.cap = path_cap;

  // Propagation/virtual-path latency happens before the fluid phase; for
  // bulk transfers it is negligible, for small RPCs it dominates — exactly
  // the regime split MRBench probes.
  engine_.schedule_in(latency, [this, act = std::move(act)]() mutable {
    model_.start(std::move(act));
  });
}

}  // namespace vhadoop::net

#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vhadoop::net {

namespace {

// Fail at construction rather than letting a zero bandwidth become a NaN
// flow rate mid-simulation (same posture as NmonMonitor's interval check).
void validate_net_config(const NetConfig& c) {
  if (c.nic_bw <= 0.0) throw std::invalid_argument("NetConfig: nic_bw must be > 0");
  if (c.bridge_bw <= 0.0) throw std::invalid_argument("NetConfig: bridge_bw must be > 0");
  if (c.loopback_bw <= 0.0) throw std::invalid_argument("NetConfig: loopback_bw must be > 0");
  if (c.hop_latency <= 0.0) throw std::invalid_argument("NetConfig: hop_latency must be > 0");
  if (c.vm_latency <= 0.0) throw std::invalid_argument("NetConfig: vm_latency must be > 0");
  if (c.vm_io_efficiency <= 0.0 || c.vm_io_efficiency > 1.0) {
    throw std::invalid_argument("NetConfig: vm_io_efficiency must be in (0, 1]");
  }
}

}  // namespace

Fabric::Fabric(sim::Engine& engine, sim::FluidModel& model, NetConfig config)
    : engine_(engine),
      model_(model),
      config_(config),
      flows_started_(engine.metrics().counter("net.flows_started")),
      bytes_requested_(engine.metrics().counter("net.bytes_requested")),
      flows_loopback_(engine.metrics().counter("net.flows_loopback")),
      flows_bridge_(engine.metrics().counter("net.flows_bridge")),
      flows_wire_(engine.metrics().counter("net.flows_wire")),
      flows_inter_rack_(engine.metrics().counter("net.flows_inter_rack")) {
  validate_net_config(config_);
  // The topology creates its per-rack shared resources (ToR uplinks etc.)
  // now, before any node resource exists — resource-id order is therefore
  // fixed by configuration, not by call order. SingleSwitch creates none,
  // keeping the pre-topology resource layout byte-identical.
  topology_ = make_topology(model_, config_.topology, config_.nic_bw, config_.hop_latency);
  engine.tracer().set_process_name(kNetPid, "fabric");
}

int Fabric::acquire_flow_lane() {
  if (!free_flow_lanes_.empty()) {
    // Lowest lane first: lane assignment stays deterministic and the trace
    // view stays compact.
    const auto it = std::min_element(free_flow_lanes_.begin(), free_flow_lanes_.end());
    const int lane = *it;
    free_flow_lanes_.erase(it);
    return lane;
  }
  return next_flow_lane_++;
}

void Fabric::release_flow_lane(int lane) { free_flow_lanes_.push_back(lane); }

Fabric::NodeId Fabric::add_node(const std::string& name, int rack_hint) {
  Node n;
  n.name = name;
  n.tx = model_.add_resource(name + ".tx", config_.nic_bw);
  n.rx = model_.add_resource(name + ".rx", config_.nic_bw);
  n.bridge = model_.add_resource(name + ".bridge", config_.bridge_bw);
  n.rack = topology_->attach(rack_hint);
  nodes_.push_back(n);
  return nodes_.size() - 1;
}

double Fabric::message_latency(const Endpoint& src, const Endpoint& dst) const {
  double lat = 0.0;
  if (src.virtualized) lat += config_.vm_latency;
  if (dst.virtualized) lat += config_.vm_latency;
  const bool loopback = src.node == dst.node && src.vm == dst.vm && src.vm >= 0;
  if (loopback) return std::max(lat, 5e-6);
  // Propagation cost of the wire path is the topology's call: one switch
  // hop on the single switch, host->ToR->core->ToR on the fat-tree, rotor
  // cycle wait on the optical fabric.
  if (src.node != dst.node) lat += topology_->wire_latency(src.node, dst.node);
  return lat;
}

void Fabric::transfer(TransferSpec spec) {
  if (spec.src.node >= nodes_.size() || spec.dst.node >= nodes_.size()) {
    throw std::out_of_range("Fabric::transfer: unknown node");
  }
  const double latency = message_latency(spec.src, spec.dst);

  sim::FluidModel::ActivitySpec act;
  act.work = spec.bytes;
  act.weight = spec.weight;
  act.on_complete = std::move(spec.on_complete);
  act.resources = std::move(spec.extra_resources);

  const bool loopback = spec.src.node == spec.dst.node && spec.src.vm == spec.dst.vm &&
                        spec.src.vm >= 0;
  // Flow span + cause edge from the driving (ambient) span. Loopback flows
  // are in-VM copies — high-volume, never network-bound — so only bridge
  // and wire flows are recorded.
  obs::Tracer& tr = engine_.tracer();
  if (tr.enabled() && !loopback) {
    const int lane = acquire_flow_lane();
    const obs::SpanId flow = tr.begin(
        kNetPid, lane, nodes_[spec.src.node].name + ">" + nodes_[spec.dst.node].name, "net");
    tr.cause(tr.ambient(), flow, "flow");
    act.on_complete = [this, lane, done = std::move(act.on_complete)] {
      engine_.tracer().end(kNetPid, lane);
      release_flow_lane(lane);
      if (done) done();
    };
  }
  flows_started_->inc();
  bytes_requested_->add(spec.bytes);
  double path_cap = std::numeric_limits<double>::infinity();
  if (loopback) {
    // In-VM copy: no shared fabric resource, just a memory-bandwidth cap.
    path_cap = config_.loopback_bw;
    flows_loopback_->inc();
  } else if (spec.src.node == spec.dst.node) {
    // Same host, different VM: crosses the software bridge once.
    act.resources.push_back(nodes_[spec.src.node].bridge);
    path_cap = config_.bridge_bw;
    flows_bridge_->inc();
  } else {
    act.resources.push_back(nodes_[spec.src.node].tx);
    // Shared fabric resources between the NICs (ToR uplink/downlink on a
    // fat-tree, rotor ports). The single switch contributes none.
    topology_->append_wire_resources(spec.src.node, spec.dst.node, act.resources);
    act.resources.push_back(nodes_[spec.dst.node].rx);
    path_cap = config_.nic_bw;
    flows_wire_->inc();
    if (nodes_[spec.src.node].rack != nodes_[spec.dst.node].rack) flows_inter_rack_->inc();
  }
  if (spec.src.virtualized || spec.dst.virtualized) {
    path_cap *= config_.vm_io_efficiency;
  }
  act.cap = path_cap;

  // Propagation/virtual-path latency happens before the fluid phase; for
  // bulk transfers it is negligible, for small RPCs it dominates — exactly
  // the regime split MRBench probes.
  engine_.schedule_in(latency, [this, act = std::move(act)]() mutable {
    model_.start(std::move(act));
  });
}

}  // namespace vhadoop::net

#include "net/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace vhadoop::net {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::FatTree: return "fat-tree";
    case TopologyKind::Rotor: return "rotor";
    case TopologyKind::SingleSwitch: break;
  }
  return "single-switch";
}

std::optional<TopologyKind> topology_kind_from_string(const std::string& s) {
  if (s == "single-switch") return TopologyKind::SingleSwitch;
  if (s == "fat-tree") return TopologyKind::FatTree;
  if (s == "rotor") return TopologyKind::Rotor;
  return std::nullopt;
}

void validate(const TopologyConfig& config) {
  if (config.racks < 1) {
    throw std::invalid_argument("TopologyConfig: racks must be >= 1");
  }
  if (config.nodes_per_rack < 1) {
    throw std::invalid_argument("TopologyConfig: nodes_per_rack must be >= 1");
  }
  if (config.oversubscription < 1.0) {
    throw std::invalid_argument("TopologyConfig: oversubscription must be >= 1");
  }
  if (config.kind == TopologyKind::Rotor && config.rotor_cycle_latency <= 0.0) {
    throw std::invalid_argument("TopologyConfig: rotor_cycle_latency must be > 0");
  }
}

int Topology::attach(int rack_hint) {
  int rack;
  if (rack_hint >= 0) {
    if (rack_hint >= rack_count()) {
      throw std::invalid_argument("Topology::attach: rack_hint beyond rack count");
    }
    rack = rack_hint;
  } else {
    rack = std::min(auto_attached_ / config_.nodes_per_rack, rack_count() - 1);
    ++auto_attached_;
  }
  node_racks_.push_back(rack);
  return rack;
}

namespace {

/// The paper's testbed model: one non-blocking switch, no shared fabric
/// resource beyond the endpoint NICs, a single hop everywhere. Rack-free by
/// definition — rack_count() is 1 no matter what the config says, so every
/// rack-aware code path upstream (HDFS placement tiers, the scheduler's
/// rack-local delay tier, per-rack filers) stays disabled and the
/// simulation is byte-identical to the pre-topology fabric.
class SingleSwitchTopology final : public Topology {
 public:
  SingleSwitchTopology(TopologyConfig config, double hop_latency)
      : Topology(config, hop_latency) {}
  const char* name() const override { return "single-switch"; }
  int rack_count() const override { return 1; }
  void append_wire_resources(std::size_t, std::size_t,
                             std::vector<sim::FluidModel::ResourceId>&) const override {}
  double wire_latency(std::size_t, std::size_t) const override { return hop_latency_; }
};

/// Fat-tree with the over-subscription concentrated at the ToR uplink:
/// intra-rack traffic switches locally at full NIC speed (one hop), while
/// inter-rack flows cross tor<src>.up and tor<dst>.down, each capped at
/// nodes_per_rack * nic_bw / oversubscription, and pay host->ToR->core->ToR
/// propagation (3 hops). No aggregation/core resource is modeled: a
/// non-blocking core is the standard abstraction, and it doubles as the
/// flow-aggregating cut that keeps the fluid solver's components from
/// coupling cluster-wide through one shared spine resource.
class FatTreeTopology final : public Topology {
 public:
  FatTreeTopology(sim::FluidModel& model, TopologyConfig config, double nic_bw,
                  double hop_latency)
      : Topology(config, hop_latency) {
    const double uplink = config_.nodes_per_rack * nic_bw / config_.oversubscription;
    for (int r = 0; r < config_.racks; ++r) {
      up_.push_back(model.add_resource("tor" + std::to_string(r) + ".up", uplink));
      down_.push_back(model.add_resource("tor" + std::to_string(r) + ".down", uplink));
    }
  }
  const char* name() const override { return "fat-tree"; }
  void append_wire_resources(std::size_t src, std::size_t dst,
                             std::vector<sim::FluidModel::ResourceId>& out) const override {
    const int rs = rack_of(src);
    const int rd = rack_of(dst);
    if (rs == rd) return;
    out.push_back(up_[static_cast<std::size_t>(rs)]);
    out.push_back(down_[static_cast<std::size_t>(rd)]);
  }
  double wire_latency(std::size_t src, std::size_t dst) const override {
    return rack_of(src) == rack_of(dst) ? hop_latency_ : 3.0 * hop_latency_;
  }

 private:
  std::vector<sim::FluidModel::ResourceId> up_;
  std::vector<sim::FluidModel::ResourceId> down_;
};

/// Rotor/round-robin optical fabric: every rack's port runs at full
/// bisection (nodes_per_rack * nic_bw, no over-subscription), but an
/// inter-rack flow must wait for the rotor to cycle to its destination —
/// modeled as a fixed rotor_cycle_latency on top of two propagation hops.
/// Bandwidth-rich and latency-taxed, the complement of the fat-tree.
class RotorTopology final : public Topology {
 public:
  RotorTopology(sim::FluidModel& model, TopologyConfig config, double nic_bw,
                double hop_latency)
      : Topology(config, hop_latency) {
    const double port = config_.nodes_per_rack * nic_bw;
    for (int r = 0; r < config_.racks; ++r) {
      up_.push_back(model.add_resource("rotor" + std::to_string(r) + ".up", port));
      down_.push_back(model.add_resource("rotor" + std::to_string(r) + ".down", port));
    }
  }
  const char* name() const override { return "rotor"; }
  void append_wire_resources(std::size_t src, std::size_t dst,
                             std::vector<sim::FluidModel::ResourceId>& out) const override {
    const int rs = rack_of(src);
    const int rd = rack_of(dst);
    if (rs == rd) return;
    out.push_back(up_[static_cast<std::size_t>(rs)]);
    out.push_back(down_[static_cast<std::size_t>(rd)]);
  }
  double wire_latency(std::size_t src, std::size_t dst) const override {
    if (rack_of(src) == rack_of(dst)) return hop_latency_;
    return 2.0 * hop_latency_ + config_.rotor_cycle_latency;
  }

 private:
  std::vector<sim::FluidModel::ResourceId> up_;
  std::vector<sim::FluidModel::ResourceId> down_;
};

}  // namespace

std::unique_ptr<Topology> make_topology(sim::FluidModel& model, const TopologyConfig& config,
                                        double nic_bw, double hop_latency) {
  validate(config);
  switch (config.kind) {
    case TopologyKind::FatTree:
      return std::make_unique<FatTreeTopology>(model, config, nic_bw, hop_latency);
    case TopologyKind::Rotor:
      return std::make_unique<RotorTopology>(model, config, nic_bw, hop_latency);
    case TopologyKind::SingleSwitch:
      break;
  }
  return std::make_unique<SingleSwitchTopology>(config, hop_latency);
}

}  // namespace vhadoop::net

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/time.hpp"

namespace vhadoop::net {

/// Network model parameters for the simulated testbed. Defaults match the
/// paper's environment: GbE NICs between Dell T710 hosts, VM-to-VM traffic
/// on the same host crossing the Xen software bridge, and a measurable
/// virtualization penalty on the VM I/O path (netfront/netback copies
/// through dom0 — Cherkasova & Gardner, USENIX ATC'05). Validated at
/// Fabric construction: non-positive bandwidths or latencies would turn
/// into NaN/degenerate flow rates in the fluid solver.
struct NetConfig {
  /// Physical NIC bandwidth, per direction (full duplex).
  double nic_bw = sim::gbit_per_s(1.0);
  /// Intra-host software-bridge bandwidth (memory-speed copies via dom0).
  double bridge_bw = sim::gbit_per_s(8.0);
  /// Same-VM (loopback) bandwidth.
  double loopback_bw = sim::gbit_per_s(16.0);
  /// One-way latency per network hop (switch traversal).
  double hop_latency = 25e-6;
  /// Extra latency contributed by the virtual I/O path of each virtualized
  /// endpoint (event-channel + grant-copy costs).
  double vm_latency = 60e-6;
  /// Throughput efficiency of a virtualized endpoint relative to bare
  /// metal. Applied as a per-flow rate cap, not a capacity reduction: many
  /// concurrent VM flows can still fill the physical NIC.
  double vm_io_efficiency = 0.75;
  /// Fabric shape between the node NICs (single switch, fat-tree, rotor).
  TopologyConfig topology;
};

/// Flow-level network fabric: per-node full-duplex NIC resources joined by a
/// pluggable topology (non-blocking single switch by default, fat-tree or
/// rotor fabric for rack-scale clusters — see net/topology.hpp), plus a
/// per-node software bridge for intra-host VM-to-VM traffic. Nodes are
/// physical machines (and the NFS servers).
class Fabric {
 public:
  using NodeId = std::size_t;

  /// Trace process for network flow spans. When the tracer is enabled,
  /// every non-loopback transfer records a span on its own lane under this
  /// pid, cause-linked ("flow") to the tracer's ambient span — the
  /// activity (shuffle fetch, HDFS block) that started the flow.
  static constexpr int kNetPid = 9996;

  struct Endpoint {
    NodeId node = 0;
    /// True when the traffic terminates inside a guest VM (virtio/netfront
    /// path); false for bare-metal endpoints such as the NFS server.
    bool virtualized = true;
    /// Optional VM identity; flows with equal node+vm are loopback.
    int vm = -1;
  };

  struct TransferSpec {
    Endpoint src;
    Endpoint dst;
    double bytes = 0.0;
    double weight = 1.0;
    /// Additional resources the flow must traverse (e.g. the NFS disk for
    /// virtual-block-device traffic).
    std::vector<sim::FluidModel::ResourceId> extra_resources;
    std::function<void()> on_complete;
  };

  /// Throws std::invalid_argument when `config` carries a non-positive
  /// bandwidth/latency or an invalid topology shape.
  Fabric(sim::Engine& engine, sim::FluidModel& model, NetConfig config);

  /// Add a physical node. `rack_hint` >= 0 pins it to that rack; -1 lets
  /// the topology auto-assign by fill order (nodes_per_rack per rack).
  NodeId add_node(const std::string& name, int rack_hint = -1);
  std::size_t node_count() const { return nodes_.size(); }

  // --- topology ------------------------------------------------------------
  int rack_count() const { return topology_->rack_count(); }
  int rack_of(NodeId n) const { return nodes_[n].rack; }
  const Topology& topology() const { return *topology_; }

  /// Start a flow. Latency (propagation + virtual I/O path) is charged
  /// before the fluid transfer begins. Returns immediately; `on_complete`
  /// fires when the last byte lands.
  void transfer(TransferSpec spec);

  /// End-to-end latency of a minimal message between the endpoints (used
  /// for RPC/heartbeat modeling).
  double message_latency(const Endpoint& src, const Endpoint& dst) const;

  // Utilization accessors for the monitor.
  double tx_utilization(NodeId n) const { return model_.utilization(nodes_[n].tx); }
  double rx_utilization(NodeId n) const { return model_.utilization(nodes_[n].rx); }
  double bridge_utilization(NodeId n) const { return model_.utilization(nodes_[n].bridge); }
  double tx_busy_integral(NodeId n) const { return model_.busy_integral(nodes_[n].tx); }
  double rx_busy_integral(NodeId n) const { return model_.busy_integral(nodes_[n].rx); }

  sim::FluidModel::ResourceId tx_resource(NodeId n) const { return nodes_[n].tx; }
  sim::FluidModel::ResourceId rx_resource(NodeId n) const { return nodes_[n].rx; }

  const NetConfig& config() const { return config_; }

 private:
  struct Node {
    std::string name;
    sim::FluidModel::ResourceId tx;
    sim::FluidModel::ResourceId rx;
    sim::FluidModel::ResourceId bridge;
    int rack = 0;
  };

  /// Claim/recycle a trace lane under kNetPid (flows overlap freely, so
  /// each needs its own lane for span nesting to hold).
  int acquire_flow_lane();
  void release_flow_lane(int lane);

  sim::Engine& engine_;
  sim::FluidModel& model_;
  NetConfig config_;
  std::unique_ptr<Topology> topology_;
  std::vector<Node> nodes_;
  std::vector<int> free_flow_lanes_;
  int next_flow_lane_ = 0;
  obs::Counter* flows_started_;
  obs::Counter* bytes_requested_;
  obs::Counter* flows_loopback_;
  obs::Counter* flows_bridge_;
  obs::Counter* flows_wire_;
  obs::Counter* flows_inter_rack_;
};

}  // namespace vhadoop::net

#include "tuner/tuner.hpp"

#include <algorithm>

namespace vhadoop::tuner {

std::vector<Recommendation> MapReduceTuner::analyse(
    const monitor::TraceAnalyser::Report& report) const {
  std::vector<Recommendation> recs;
  if (report.avg_host_cpu.empty()) return recs;

  double cpu_max = 0.0, cpu_min = 1.0, net_max = 0.0;
  std::size_t busiest_host = 0, idlest_host = 0;
  for (std::size_t h = 0; h < report.avg_host_cpu.size(); ++h) {
    if (report.avg_host_cpu[h] > cpu_max) {
      cpu_max = report.avg_host_cpu[h];
      busiest_host = h;
    }
    if (report.avg_host_cpu[h] < cpu_min) {
      cpu_min = report.avg_host_cpu[h];
      idlest_host = h;
    }
    net_max = std::max({net_max, report.avg_host_tx[h], report.avg_host_rx[h]});
  }
  (void)busiest_host;

  if (report.avg_nfs_disk >= policy_.disk_saturated) {
    recs.push_back({Recommendation::Kind::IncreaseSortBuffer,
                    "NFS disk saturated (avg " + std::to_string(report.avg_nfs_disk) +
                        ", p50 " + std::to_string(report.p50_nfs_disk) + ", p95 " +
                        std::to_string(report.p95_nfs_disk) +
                        "): raise io.sort.mb to cut spill passes"});
    recs.push_back({Recommendation::Kind::LowerReplication,
                    "NFS disk saturated: consider dfs.replication=2 to shrink the "
                    "pipeline write amplification"});
  }
  if (net_max >= policy_.net_saturated) {
    recs.push_back({Recommendation::Kind::RebalanceNetwork,
                    "host NIC saturated (avg " + std::to_string(net_max) + ", p95 " +
                        std::to_string(report.p95_net) +
                        "): co-locate shuffle-heavy VMs on one physical machine"});
  }
  if (cpu_max >= policy_.cpu_saturated) {
    if (cpu_max - cpu_min >= policy_.imbalance_gap) {
      Recommendation r{Recommendation::Kind::MigrateVm,
                       "host CPU imbalance: live-migrate the busiest VM to the idle host"};
      r.vm_index = report.busiest_vm;
      r.target_host = idlest_host;
      recs.push_back(std::move(r));
    } else {
      recs.push_back({Recommendation::Kind::ReduceMapSlots,
                      "host CPU saturated everywhere (p95 " +
                          std::to_string(report.p95_host_cpu) +
                          "): lower mapred.tasktracker.map.tasks.maximum"});
    }
  } else if (cpu_max <= policy_.cpu_idle && net_max < policy_.net_saturated &&
             report.avg_nfs_disk < policy_.disk_saturated) {
    recs.push_back({Recommendation::Kind::IncreaseMapSlots,
                    "cluster underutilized: raise map slots per tasktracker"});
  }
  return recs;
}

std::vector<Recommendation> MapReduceTuner::analyse_scheduling(
    const obs::Registry& metrics, const mapreduce::HadoopConfig& config) const {
  std::vector<Recommendation> recs;
  // Fair/Capacity already interleave jobs; the rule targets FIFO clusters.
  if (config.scheduler != mapreduce::SchedulerPolicy::Fifo) return recs;
  const obs::Histogram* wait = metrics.find_histogram("mr.job_queue_wait_seconds");
  const obs::Gauge* running = metrics.find_gauge("mr.jobs_running");
  if (!wait || wait->count() < 2 || !running) return recs;
  if (running->max() < policy_.min_concurrent_jobs) return recs;
  const double p95 = wait->percentile(0.95);
  if (p95 < policy_.queue_wait_tolerable) return recs;
  recs.push_back({Recommendation::Kind::UseFairScheduler,
                  "FIFO head-of-line blocking: p95 job queue wait " + std::to_string(p95) +
                      " s with up to " + std::to_string(running->max()) +
                      " concurrent jobs — switch the JobTracker to the fair scheduler"});
  return recs;
}

mapreduce::HadoopConfig MapReduceTuner::apply(const mapreduce::HadoopConfig& config,
                                              const std::vector<Recommendation>& recs) {
  mapreduce::HadoopConfig out = config;
  for (const Recommendation& r : recs) {
    switch (r.kind) {
      case Recommendation::Kind::ReduceMapSlots:
        out.map_slots_per_worker = std::max(1, out.map_slots_per_worker - 1);
        break;
      case Recommendation::Kind::IncreaseMapSlots:
        out.map_slots_per_worker += 1;
        break;
      case Recommendation::Kind::IncreaseSortBuffer:
        out.io_sort_bytes *= 2.0;
        break;
      case Recommendation::Kind::LowerReplication:
        if (out.output_replication == 0 || out.output_replication > 2) {
          out.output_replication = 2;
        }
        break;
      case Recommendation::Kind::UseFairScheduler:
        out.scheduler = mapreduce::SchedulerPolicy::Fair;
        break;
      case Recommendation::Kind::MigrateVm:
      case Recommendation::Kind::RebalanceNetwork:
        break;  // actuation needs the Cloud; advisory here
    }
  }
  return out;
}

}  // namespace vhadoop::tuner

#pragma once

#include <string>
#include <vector>

#include "mapreduce/hadoop_config.hpp"
#include "monitor/nmon.hpp"

namespace vhadoop::tuner {

/// What the MapReduce Tuner proposes after reading the nmon traces.
struct Recommendation {
  enum class Kind {
    ReduceMapSlots,    ///< host CPU saturated: fewer concurrent child JVMs
    IncreaseMapSlots,  ///< everything idle: raise parallelism
    IncreaseSortBuffer,///< NFS disk saturated by spill traffic
    LowerReplication,  ///< NFS disk saturated by pipeline writes
    MigrateVm,         ///< host imbalance: move the busiest VM
    RebalanceNetwork,  ///< NIC saturated: co-locate chatty VMs
  };

  Kind kind;
  std::string message;
  /// For MigrateVm: which VM (index into the monitor's VM list) and where.
  std::size_t vm_index = 0;
  std::size_t target_host = 0;
};

/// Thresholds for the rule engine.
struct TunerPolicy {
  double cpu_saturated = 0.90;
  double cpu_idle = 0.35;
  double net_saturated = 0.85;
  double disk_saturated = 0.85;
  double imbalance_gap = 0.40;  ///< host CPU spread that triggers migration
};

/// The MapReduce Tuner module (paper Sec. II-B): turns monitoring data into
/// configuration adjustments — either re-configured Hadoop parameters or a
/// live-migration suggestion. `analyse` is pure (testable); `apply` folds
/// the parameter-level recommendations into a HadoopConfig.
class MapReduceTuner {
 public:
  explicit MapReduceTuner(TunerPolicy policy = {}) : policy_(policy) {}

  std::vector<Recommendation> analyse(const monitor::TraceAnalyser::Report& report) const;

  /// Apply parameter recommendations; migration/advice entries are left to
  /// the caller (they need the Cloud). Returns the adjusted config.
  static mapreduce::HadoopConfig apply(const mapreduce::HadoopConfig& config,
                                       const std::vector<Recommendation>& recs);

 private:
  TunerPolicy policy_;
};

}  // namespace vhadoop::tuner

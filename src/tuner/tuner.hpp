#pragma once

#include <string>
#include <vector>

#include "mapreduce/hadoop_config.hpp"
#include "monitor/nmon.hpp"
#include "obs/metrics.hpp"

namespace vhadoop::tuner {

/// What the MapReduce Tuner proposes after reading the nmon traces.
struct Recommendation {
  enum class Kind {
    ReduceMapSlots,    ///< host CPU saturated: fewer concurrent child JVMs
    IncreaseMapSlots,  ///< everything idle: raise parallelism
    IncreaseSortBuffer,///< NFS disk saturated by spill traffic
    LowerReplication,  ///< NFS disk saturated by pipeline writes
    MigrateVm,         ///< host imbalance: move the busiest VM
    RebalanceNetwork,  ///< NIC saturated: co-locate chatty VMs
    UseFairScheduler,  ///< FIFO head-of-line blocking under multi-job load
  };

  Kind kind;
  std::string message;
  /// For MigrateVm: which VM (index into the monitor's VM list) and where.
  std::size_t vm_index = 0;
  std::size_t target_host = 0;
};

/// Thresholds for the rule engine.
struct TunerPolicy {
  double cpu_saturated = 0.90;
  double cpu_idle = 0.35;
  double net_saturated = 0.85;
  double disk_saturated = 0.85;
  double imbalance_gap = 0.40;  ///< host CPU spread that triggers migration
  /// Scheduler rule: p95 job queue wait (seconds) a FIFO cluster may show
  /// before the tuner proposes the Fair scheduler.
  double queue_wait_tolerable = 15.0;
  /// ... and only when the cluster actually held this many jobs at once
  /// (a single-tenant cluster gains nothing from Fair).
  double min_concurrent_jobs = 2.0;
};

/// The MapReduce Tuner module (paper Sec. II-B): turns monitoring data into
/// configuration adjustments — either re-configured Hadoop parameters or a
/// live-migration suggestion. `analyse` is pure (testable); `apply` folds
/// the parameter-level recommendations into a HadoopConfig.
class MapReduceTuner {
 public:
  explicit MapReduceTuner(TunerPolicy policy = {}) : policy_(policy) {}

  std::vector<Recommendation> analyse(const monitor::TraceAnalyser::Report& report) const;

  /// Scheduler-aware pass: reads the JobTracker's metrics (queue-wait
  /// histogram, concurrent-jobs gauge) and proposes a policy change when a
  /// FIFO cluster shows multi-tenant head-of-line blocking.
  std::vector<Recommendation> analyse_scheduling(const obs::Registry& metrics,
                                                 const mapreduce::HadoopConfig& config) const;

  /// Apply parameter recommendations; migration/advice entries are left to
  /// the caller (they need the Cloud). Returns the adjusted config.
  static mapreduce::HadoopConfig apply(const mapreduce::HadoopConfig& config,
                                       const std::vector<Recommendation>& recs);

 private:
  TunerPolicy policy_;
};

}  // namespace vhadoop::tuner

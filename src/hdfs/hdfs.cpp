#include "hdfs/hdfs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/latch.hpp"

namespace vhadoop::hdfs {

HdfsCluster::HdfsCluster(virt::Cloud& cloud, HdfsConfig config, virt::VmId namenode,
                         std::vector<virt::VmId> datanodes, sim::Rng rng)
    : cloud_(cloud),
      config_(config),
      namenode_(namenode),
      datanodes_(std::move(datanodes)),
      rng_(rng),
      m_blocks_read_(cloud.engine().metrics().counter("hdfs.blocks_read")),
      m_bytes_read_(cloud.engine().metrics().counter("hdfs.bytes_read")),
      m_reads_local_(cloud.engine().metrics().counter("hdfs.reads_local")),
      m_reads_remote_(cloud.engine().metrics().counter("hdfs.reads_remote")),
      m_reads_rack_local_(cloud.engine().metrics().counter("hdfs.reads_rack_local")),
      m_files_written_(cloud.engine().metrics().counter("hdfs.files_written")),
      m_blocks_written_(cloud.engine().metrics().counter("hdfs.blocks_written")),
      m_bytes_written_(cloud.engine().metrics().counter("hdfs.bytes_written")),
      m_pipeline_bytes_(cloud.engine().metrics().counter("hdfs.pipeline_bytes")),
      m_rereplications_(cloud.engine().metrics().counter("hdfs.rereplications_started")) {
  if (datanodes_.empty()) throw std::invalid_argument("HdfsCluster: no datanodes");
  if (config_.replication < 1) throw std::invalid_argument("HdfsCluster: replication < 1");
  if (config_.block_size <= 0) throw std::invalid_argument("HdfsCluster: block size <= 0");
  cloud_.engine().tracer().set_process_name(kHdfsPid, "hdfs");
  cloud_.on_crash([this](virt::VmId vm) { handle_datanode_failure(vm); });
}

int HdfsCluster::acquire_write_lane() {
  if (!free_write_lanes_.empty()) {
    // Lowest lane first keeps lane assignment deterministic (see Fabric).
    const auto it = std::min_element(free_write_lanes_.begin(), free_write_lanes_.end());
    const int lane = *it;
    free_write_lanes_.erase(it);
    return lane;
  }
  return next_write_lane_++;
}

void HdfsCluster::release_write_lane(int lane) { free_write_lanes_.push_back(lane); }

int HdfsCluster::effective_replication() const {
  return static_cast<int>(std::min<std::size_t>(config_.replication, datanodes_.size()));
}

int HdfsCluster::effective_replication_live() const {
  std::size_t live = 0;
  for (virt::VmId dn : datanodes_) live += cloud_.alive(dn);
  return static_cast<int>(std::min<std::size_t>(config_.replication, live));
}

double HdfsCluster::file_size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) throw std::runtime_error("HDFS: no such file " + path);
  return it->second.size;
}

const std::vector<HdfsCluster::BlockInfo>& HdfsCluster::blocks(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) throw std::runtime_error("HDFS: no such file " + path);
  return it->second.blocks;
}

void HdfsCluster::remove(const std::string& path) { files_.erase(path); }

std::vector<virt::VmId> HdfsCluster::choose_pipeline(virt::VmId writer, int replication) {
  // First replica on the writer if it is a (live) datanode, the rest drawn
  // from a shuffled pool of the other live datanodes. On a single-rack
  // cluster that pool is consumed in shuffle order (Hadoop's rack-unaware
  // default, unchanged from before the topology layer); on a rack-scale
  // fabric the classic rack-aware policy applies: second replica off the
  // first replica's rack, third replica back in the second's rack.
  std::vector<virt::VmId> pipeline;
  const int r = static_cast<int>(std::min<std::size_t>(
      replication > 0 ? replication : config_.replication, datanodes_.size()));
  const bool writer_is_dn =
      cloud_.alive(writer) &&
      std::find(datanodes_.begin(), datanodes_.end(), writer) != datanodes_.end();
  if (writer_is_dn) pipeline.push_back(writer);
  std::vector<virt::VmId> pool;
  for (virt::VmId dn : datanodes_) {
    if (!cloud_.alive(dn)) continue;
    if (!(writer_is_dn && dn == writer)) pool.push_back(dn);
  }
  rng_.shuffle(pool);
  if (cloud_.rack_count() <= 1) {
    for (virt::VmId dn : pool) {
      if (static_cast<int>(pipeline.size()) >= r) break;
      pipeline.push_back(dn);
    }
    return pipeline;
  }

  // Take the first pool entry satisfying `pred` (shuffle order keeps the
  // choice random-but-deterministic); falls back to the caller.
  auto take = [&](auto&& pred) {
    for (std::size_t k = 0; k < pool.size(); ++k) {
      if (pred(pool[k])) {
        pipeline.push_back(pool[k]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(k));
        return true;
      }
    }
    return false;
  };
  auto any = [](virt::VmId) { return true; };
  while (static_cast<int>(pipeline.size()) < r && !pool.empty()) {
    if (pipeline.empty()) {
      take(any);
    } else if (pipeline.size() == 1) {
      // Second replica off-rack: survives a whole-rack outage. When every
      // remaining candidate shares the first replica's rack, degrade
      // gracefully to any node.
      const int r0 = cloud_.rack_of_vm(pipeline[0]);
      if (!take([&](virt::VmId v) { return cloud_.rack_of_vm(v) != r0; })) take(any);
    } else if (pipeline.size() == 2) {
      // Third replica shares the second's rack: only one copy crosses the
      // core per pipeline, yet two racks hold the block.
      const int r1 = cloud_.rack_of_vm(pipeline[1]);
      if (!take([&](virt::VmId v) { return cloud_.rack_of_vm(v) == r1; })) take(any);
    } else {
      take(any);
    }
  }
  return pipeline;
}

void HdfsCluster::write_file(const std::string& path, double bytes, virt::VmId client,
                             std::function<void()> on_complete, int replication_override) {
  if (bytes < 0) throw std::invalid_argument("HDFS write: negative size");
  if (files_.contains(path)) throw std::runtime_error("HDFS: file exists: " + path);
  FileMeta meta;
  meta.size = bytes;
  const int n_blocks = std::max(1, static_cast<int>(std::ceil(bytes / config_.block_size)));
  double left = bytes;
  for (int i = 0; i < n_blocks; ++i) {
    BlockInfo b;
    b.index = i;
    b.bytes = std::min(left, config_.block_size);
    b.replicas = choose_pipeline(client, replication_override);
    left -= b.bytes;
    meta.blocks.push_back(std::move(b));
  }
  files_.emplace(path, std::move(meta));
  bytes_written_ += bytes;
  m_files_written_->inc();
  m_blocks_written_->add(n_blocks);
  m_bytes_written_->add(bytes);
  // Write-pipeline trace: one lane per in-flight file, a root span covering
  // the whole write, cause-linked from whatever span is driving it (a task
  // commit, a test, ...). Blocks become children chained by "pipeline".
  obs::Tracer& tr = cloud_.engine().tracer();
  int lane = -1;
  if (tr.enabled()) {
    lane = acquire_write_lane();
    const obs::SpanId root = tr.begin(kHdfsPid, lane, "hdfs_write:" + path, "hdfs");
    tr.cause(tr.ambient(), root, "hdfs-write");
  }
  write_block(path, 0, client, std::move(on_complete), lane, 0);
}

void HdfsCluster::write_block(const std::string& path, std::size_t index, virt::VmId client,
                              std::function<void()> on_complete, int trace_lane,
                              obs::SpanId prev_block) {
  obs::Tracer& tr = cloud_.engine().tracer();
  const FileMeta& meta = files_.at(path);
  if (index >= meta.blocks.size()) {
    if (trace_lane >= 0) {
      tr.end(kHdfsPid, trace_lane);  // close the hdfs_write root span
      release_write_lane(trace_lane);
    }
    if (on_complete) on_complete();
    return;
  }
  const BlockInfo& block = meta.blocks[index];
  obs::SpanId block_span = 0;
  if (trace_lane >= 0) {
    block_span = tr.begin(kHdfsPid, trace_lane, "block-" + std::to_string(block.index), "hdfs");
    // Block i+1 cannot start until block i's pipeline is fully acked.
    tr.cause(prev_block, block_span, "pipeline");
  }
  auto next = [this, path, index, client, trace_lane, block_span,
               on_complete = std::move(on_complete)]() mutable {
    if (trace_lane >= 0) cloud_.engine().tracer().end(kHdfsPid, trace_lane);
    write_block(path, index + 1, client, std::move(on_complete), trace_lane, block_span);
  };
  // The pipeline streams: client -> r0 -> r1 -> r2 while each replica spools
  // to its (NFS-backed) disk. Stages overlap, so we model them as concurrent
  // activities joined by a latch — bandwidth-exact, latency-approximate.
  const std::size_t hops = block.replicas.size();  // client->r0 plus forwards
  m_pipeline_bytes_->add(block.bytes * static_cast<double>(hops));
  auto latch = sim::Latch::create(2 * hops, std::move(next));
  const std::string key = path + "#" + std::to_string(block.index);
  virt::VmId prev = client;
  // Flows started inside the block span belong to it causally.
  obs::AmbientCause amb(tr, block_span != 0 ? block_span : tr.ambient());
  for (virt::VmId replica : block.replicas) {
    cloud_.vm_transfer(prev, replica, block.bytes, [latch] { latch->arrive(); });
    cloud_.disk_write(replica, block.bytes, [latch] { latch->arrive(); }, 1.0, key);
    prev = replica;
  }
}

virt::VmId HdfsCluster::preferred_replica(const BlockInfo& block, virt::VmId reader) const {
  // Same VM beats same host beats same rack beats anything else; dead
  // replicas are never chosen. First match wins so the choice is
  // deterministic. (On a single-rack cluster the rack tier is the "any"
  // tier, so it is skipped — bit-identical to the pre-topology walk.)
  for (virt::VmId r : block.replicas) {
    if (r == reader && cloud_.alive(r)) return r;
  }
  for (virt::VmId r : block.replicas) {
    if (cloud_.alive(r) && cloud_.host_of(r) == cloud_.host_of(reader)) return r;
  }
  if (cloud_.rack_count() > 1) {
    const int reader_rack = cloud_.rack_of_vm(reader);
    for (virt::VmId r : block.replicas) {
      if (cloud_.alive(r) && cloud_.rack_of_vm(r) == reader_rack) return r;
    }
  }
  for (virt::VmId r : block.replicas) {
    if (cloud_.alive(r)) return r;
  }
  throw std::runtime_error("HDFS: all replicas of a block are dead (data loss)");
}

bool HdfsCluster::is_local(const BlockInfo& block, virt::VmId reader) const {
  return std::find(block.replicas.begin(), block.replicas.end(), reader) != block.replicas.end();
}

LocalityTier HdfsCluster::locality_tier(const BlockInfo& block, virt::VmId reader) const {
  const int reader_rack = cloud_.rack_of_vm(reader);
  bool rack_local = false;
  for (virt::VmId r : block.replicas) {
    if (r == reader) return LocalityTier::Node;
    if (cloud_.rack_of_vm(r) == reader_rack) rack_local = true;
  }
  return rack_local ? LocalityTier::Rack : LocalityTier::Off;
}

void HdfsCluster::read_block(const std::string& path, int block_index, virt::VmId client,
                             std::function<void()> on_complete) {
  const FileMeta& meta = files_.at(path);
  const BlockInfo& block = meta.blocks.at(static_cast<std::size_t>(block_index));
  bytes_read_ += block.bytes;
  const virt::VmId replica = preferred_replica(block, client);
  m_blocks_read_->inc();
  m_bytes_read_->add(block.bytes);
  if (replica == client) {
    m_reads_local_->inc();
  } else {
    m_reads_remote_->inc();
    if (cloud_.rack_count() > 1 && cloud_.rack_of_vm(replica) == cloud_.rack_of_vm(client)) {
      m_reads_rack_local_->inc();
    }
  }
  // Data path: replica's disk read (page cache or NFS), streamed to the
  // client over the fabric (loopback when the replica *is* the client).
  // Concurrent stages joined by a latch, as with writes.
  const std::string key = path + "#" + std::to_string(block.index);
  auto latch = sim::Latch::create(2, std::move(on_complete));
  cloud_.disk_read(replica, block.bytes, [latch] { latch->arrive(); }, 1.0, key);
  cloud_.vm_transfer(replica, client, block.bytes, [latch] { latch->arrive(); });
}

void HdfsCluster::handle_datanode_failure(virt::VmId dead) {
  if (std::find(datanodes_.begin(), datanodes_.end(), dead) == datanodes_.end()) return;
  const int target = effective_replication_live();
  for (auto& [path, meta] : files_) {
    for (BlockInfo& block : meta.blocks) {
      auto it = std::find(block.replicas.begin(), block.replicas.end(), dead);
      if (it == block.replicas.end()) continue;
      block.replicas.erase(it);
      if (block.replicas.empty()) continue;  // lost — reads will throw
      if (static_cast<int>(block.replicas.size()) >= target) continue;

      // Re-replicate from the first live copy to a fresh live datanode.
      const virt::VmId source = block.replicas.front();
      std::vector<virt::VmId> pool;
      for (virt::VmId dn : datanodes_) {
        if (cloud_.alive(dn) &&
            std::find(block.replicas.begin(), block.replicas.end(), dn) ==
                block.replicas.end()) {
          pool.push_back(dn);
        }
      }
      if (pool.empty()) continue;
      const virt::VmId fresh = pool[rng_.uniform_int(pool.size())];
      const std::string key = path + "#" + std::to_string(block.index);
      const double bytes = block.bytes;
      // Copy traffic: read at the source (likely cold), stream, land on
      // the new node's NFS-backed disk. The replica becomes visible once
      // the copy completes.
      auto done = [this, path, index = block.index, fresh] {
        auto fit = files_.find(path);
        if (fit == files_.end()) return;  // file removed meanwhile
        BlockInfo& b = fit->second.blocks[static_cast<std::size_t>(index)];
        b.replicas.push_back(fresh);
      };
      m_rereplications_->inc();
      auto latch = sim::Latch::create(3, std::move(done));
      cloud_.disk_read(source, bytes, [latch] { latch->arrive(); }, 1.0, key);
      cloud_.vm_transfer(source, fresh, bytes, [latch] { latch->arrive(); });
      cloud_.disk_write(fresh, bytes, [latch] { latch->arrive(); }, 1.0, key);
    }
  }
}

void HdfsCluster::decommission_datanode(virt::VmId vm, std::function<void()> on_complete) {
  auto pos = std::find(datanodes_.begin(), datanodes_.end(), vm);
  if (pos == datanodes_.end()) throw std::invalid_argument("decommission: not a datanode");

  // Copy every replica the leaver holds to a node that lacks one.
  struct Copy {
    std::string path;
    int index;
    virt::VmId target;
    double bytes;
  };
  std::vector<Copy> copies;
  for (auto& [path, meta] : files_) {
    for (BlockInfo& block : meta.blocks) {
      if (std::find(block.replicas.begin(), block.replicas.end(), vm) == block.replicas.end()) {
        continue;
      }
      std::vector<virt::VmId> pool;
      for (virt::VmId dn : datanodes_) {
        if (dn != vm && cloud_.alive(dn) &&
            std::find(block.replicas.begin(), block.replicas.end(), dn) ==
                block.replicas.end()) {
          pool.push_back(dn);
        }
      }
      if (!pool.empty()) {
        copies.push_back({path, block.index, pool[rng_.uniform_int(pool.size())], block.bytes});
      }
    }
  }

  auto finalize = [this, vm, on_complete = std::move(on_complete)]() mutable {
    // Drop the leaver from every replica list and the datanode set.
    for (auto& [path, meta] : files_) {
      for (BlockInfo& block : meta.blocks) {
        block.replicas.erase(std::remove(block.replicas.begin(), block.replicas.end(), vm),
                             block.replicas.end());
      }
    }
    datanodes_.erase(std::remove(datanodes_.begin(), datanodes_.end(), vm), datanodes_.end());
    if (on_complete) on_complete();
  };

  auto latch = sim::Latch::create_or_fire(copies.size(), std::move(finalize));
  for (const Copy& c : copies) {
    const std::string key = c.path + "#" + std::to_string(c.index);
    auto done = [this, c, key, latch] {
      auto it = files_.find(c.path);
      if (it != files_.end()) {
        it->second.blocks[static_cast<std::size_t>(c.index)].replicas.push_back(c.target);
      }
      latch->arrive();
    };
    auto pair = sim::Latch::create(3, std::move(done));
    cloud_.disk_read(vm, c.bytes, [pair] { pair->arrive(); }, 1.0, key);
    cloud_.vm_transfer(vm, c.target, c.bytes, [pair] { pair->arrive(); });
    cloud_.disk_write(c.target, c.bytes, [pair] { pair->arrive(); }, 1.0, key);
  }
}

void HdfsCluster::add_datanode(virt::VmId vm) {
  if (std::find(datanodes_.begin(), datanodes_.end(), vm) != datanodes_.end()) return;
  datanodes_.push_back(vm);
}

int HdfsCluster::under_replicated_blocks() const {
  const int target = effective_replication_live();
  int n = 0;
  for (const auto& [path, meta] : files_) {
    for (const BlockInfo& block : meta.blocks) {
      int live = 0;
      for (virt::VmId r : block.replicas) live += cloud_.alive(r);
      if (live < target) ++n;
    }
  }
  return n;
}

void HdfsCluster::read_file(const std::string& path, virt::VmId client,
                            std::function<void()> on_complete) {
  read_block_seq(path, 0, client, std::move(on_complete));
}

void HdfsCluster::read_block_seq(const std::string& path, std::size_t index, virt::VmId client,
                                 std::function<void()> on_complete) {
  const FileMeta& meta = files_.at(path);
  if (index >= meta.blocks.size()) {
    if (on_complete) on_complete();
    return;
  }
  read_block(path, static_cast<int>(index), client,
             [this, path, index, client, on_complete = std::move(on_complete)]() mutable {
               read_block_seq(path, index + 1, client, std::move(on_complete));
             });
}

}  // namespace vhadoop::hdfs

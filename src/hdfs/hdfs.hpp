#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/rng.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::hdfs {

/// The Hadoop-Module parameters the paper lists (Sec. II-B).
struct HdfsConfig {
  /// dfs.replication — effective replication is capped by #datanodes.
  int replication = 3;
  /// dfs.block.size in bytes.
  double block_size = 64 * sim::kMiB;
};

/// How close a block replica is to a reader, in scheduler terms: on the
/// same VM, on another VM in the reader's rack, or off-rack entirely. A
/// single-rack cluster never reports Off (everything is rack-local there).
enum class LocalityTier { Node, Rack, Off };

/// Simulated HDFS deployed over a hadoop virtual cluster: one namenode VM
/// and N datanode VMs. Files carry sizes, not content — the real bytes of
/// a job live in the logical MapReduce executor; HDFS models the *traffic*:
/// pipeline replication on write, locality-preferring replica choice on
/// read, and the NFS-backed virtual disks underneath every datanode.
class HdfsCluster {
 public:
  /// Trace process for HDFS write-pipeline spans. Each write_file claims a
  /// lane under this pid: a root "hdfs_write:<path>" span with one
  /// "block-<i>" child per block, chained by "pipeline" cause edges (block
  /// i+1 starts when block i's pipeline is fully acked). The root span is
  /// additionally cause-linked from the tracer's ambient span (the commit
  /// span of the task that wrote the file).
  static constexpr int kHdfsPid = 9997;

  struct BlockInfo {
    int index = 0;
    double bytes = 0.0;
    std::vector<virt::VmId> replicas;  // replicas[0] is the primary
  };

  /// Registers a crash listener with the cloud: when a datanode dies, its
  /// replicas are dropped and re-replication traffic restores the target
  /// factor from the surviving copies (Hadoop's namenode behaviour).
  HdfsCluster(virt::Cloud& cloud, HdfsConfig config, virt::VmId namenode,
              std::vector<virt::VmId> datanodes, sim::Rng rng);

  // --- namespace ----------------------------------------------------------
  bool exists(const std::string& path) const { return files_.contains(path); }
  double file_size(const std::string& path) const;
  const std::vector<BlockInfo>& blocks(const std::string& path) const;
  void remove(const std::string& path);

  // --- data path ----------------------------------------------------------
  /// Stream `bytes` from `client` into `path`: block by block, each block
  /// through a replication pipeline (local-first placement, Hadoop's
  /// default policy), every replica landing on its NFS-backed disk.
  /// `replication_override` > 0 replaces dfs.replication for this file
  /// (TeraSort commits its output at replication 1).
  void write_file(const std::string& path, double bytes, virt::VmId client,
                  std::function<void()> on_complete, int replication_override = 0);

  /// Stream the whole file to `client`, choosing for each block the closest
  /// replica (same VM > same host > remote).
  void read_file(const std::string& path, virt::VmId client, std::function<void()> on_complete);

  /// Read a single block (MapReduce input splits are block-aligned).
  void read_block(const std::string& path, int block_index, virt::VmId client,
                  std::function<void()> on_complete);

  /// Replica the scheduler would prefer for this block from `reader` —
  /// used for data-locality-aware task placement.
  virt::VmId preferred_replica(const BlockInfo& block, virt::VmId reader) const;
  bool is_local(const BlockInfo& block, virt::VmId reader) const;
  /// Locality tier of the closest replica relative to `reader` (membership
  /// semantics, like is_local: aliveness is the read path's concern). A
  /// block whose replicas all died reports Off.
  LocalityTier locality_tier(const BlockInfo& block, virt::VmId reader) const;

  /// Drop a dead datanode's replicas and start re-replication for every
  /// under-replicated block that still has a live copy. Called from the
  /// cloud's crash notification; exposed for tests.
  void handle_datanode_failure(virt::VmId dead);

  /// Register a freshly booted VM as an additional datanode (cluster
  /// scale-out). New blocks may be placed on it immediately.
  void add_datanode(virt::VmId vm);

  /// Gracefully decommission a datanode: every replica it holds is copied
  /// to another live node first (real traffic), then the node leaves the
  /// datanode set. `on_complete` fires when the last copy lands — unlike a
  /// crash, no block is ever under-replicated afterwards.
  void decommission_datanode(virt::VmId vm, std::function<void()> on_complete);

  /// Blocks currently below the effective replication target.
  int under_replicated_blocks() const;

  // --- introspection ------------------------------------------------------
  const std::vector<virt::VmId>& datanodes() const { return datanodes_; }
  virt::VmId namenode() const { return namenode_; }
  int effective_replication() const;
  /// Replication target achievable with the currently live datanodes.
  int effective_replication_live() const;
  double bytes_written() const { return bytes_written_; }
  double bytes_read() const { return bytes_read_; }

 private:
  struct FileMeta {
    double size = 0.0;
    std::vector<BlockInfo> blocks;
  };

  std::vector<virt::VmId> choose_pipeline(virt::VmId writer, int replication);
  /// `trace_lane` < 0 means untraced; `prev_block` is the preceding block's
  /// span for the "pipeline" cause chain (0 for the first block).
  void write_block(const std::string& path, std::size_t index, virt::VmId client,
                   std::function<void()> on_complete, int trace_lane,
                   obs::SpanId prev_block);
  int acquire_write_lane();
  void release_write_lane(int lane);
  void read_block_seq(const std::string& path, std::size_t index, virt::VmId client,
                      std::function<void()> on_complete);

  virt::Cloud& cloud_;
  HdfsConfig config_;
  virt::VmId namenode_;
  std::vector<virt::VmId> datanodes_;
  sim::Rng rng_;
  // std::map, not unordered: failure handling, decommission and fsck-style
  // scans iterate the namespace, and the traffic they start must be ordered
  // identically on every run (determinism contract, DESIGN.md §9).
  std::map<std::string, FileMeta> files_;
  std::vector<int> free_write_lanes_;
  int next_write_lane_ = 0;
  double bytes_written_ = 0.0;
  double bytes_read_ = 0.0;
  obs::Counter* m_blocks_read_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_reads_local_;
  obs::Counter* m_reads_remote_;
  obs::Counter* m_reads_rack_local_;
  obs::Counter* m_files_written_;
  obs::Counter* m_blocks_written_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_pipeline_bytes_;
  obs::Counter* m_rereplications_;
};

}  // namespace vhadoop::hdfs

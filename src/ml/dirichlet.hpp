#pragma once

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// Dirichlet Process Clustering (paper Sec. IV-A, Mahout DirichletDriver):
/// Bayesian mixture modeling with `k` candidate spherical-Gaussian models.
/// Each iteration's mapper computes the posterior over models for every
/// point and *samples* an assignment (Gibbs style, deterministically seeded
/// per record/iteration so runs are reproducible); the reducer re-estimates
/// model means/variances and the mixture is re-weighted with the Dirichlet
/// prior `alpha`. Empty models stay available for data to occupy — the DP's
/// "new table" behaviour within a truncated stick.
struct DirichletConfig {
  int k = 10;         ///< truncation level (candidate models)
  double alpha = 1.0;  ///< concentration parameter
  ClusteringConfig base;
};

/// One candidate model.
struct DirichletModel {
  double mixture = 0.0;  ///< mixing weight
  double count = 0.0;    ///< points assigned last iteration
  Vec mean;
  double stddev = 1.0;
};

struct DirichletRun : ClusteringRun {
  std::vector<DirichletModel> models;  ///< all k models, including empty
};

DirichletRun dirichlet_cluster(const Dataset& data, const DirichletConfig& config);

}  // namespace vhadoop::ml

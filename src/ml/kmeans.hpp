#pragma once

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// MapReduce k-means (paper Sec. IV-A, Mahout KMeansDriver): per iteration
/// one job — mappers assign points to the nearest centroid and emit partial
/// (sum, count) per cluster, a combiner folds partials, the reducer forms
/// new centroids; the driver loops until centroids move less than the
/// convergence delta or max iterations is hit.
struct KMeansConfig {
  int k = 6;
  ClusteringConfig base;
};

/// Seed centers: the first k distinct points (Mahout's RandomSeedGenerator
/// with a fixed seed is equivalent for our deterministic datasets).
std::vector<Vec> seed_centers(const Dataset& data, int k, std::uint64_t seed = 31);

ClusteringRun kmeans_cluster(const Dataset& data, const KMeansConfig& config,
                             std::vector<Vec> initial_centers = {});

}  // namespace vhadoop::ml

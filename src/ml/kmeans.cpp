#include "ml/kmeans.hpp"

#include <memory>
#include <stdexcept>

#include "sim/rng.hpp"

namespace vhadoop::ml {

std::vector<Vec> seed_centers(const Dataset& data, int k, std::uint64_t seed) {
  if (k <= 0) throw std::invalid_argument("k <= 0");
  if (data.size() < static_cast<std::size_t>(k)) {
    throw std::invalid_argument("k exceeds dataset size");
  }
  sim::Rng rng(seed);
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<Vec> centers;
  centers.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) centers.push_back(data.points[idx[static_cast<std::size_t>(c)]]);
  return centers;
}

namespace {

/// Value payload of a partial cluster observation: [count, sum...].
std::string encode_partial(double count, const Vec& sum) {
  Vec payload;
  payload.reserve(sum.size() + 1);
  payload.push_back(count);
  payload.insert(payload.end(), sum.begin(), sum.end());
  return mapreduce::encode_vec(payload);
}

std::pair<double, Vec> decode_partial(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  const double count = payload.empty() ? 0.0 : payload[0];
  Vec sum(payload.begin() + (payload.empty() ? 0 : 1), payload.end());
  return {count, std::move(sum)};
}

class KMeansMapper : public mapreduce::Mapper {
 public:
  explicit KMeansMapper(std::shared_ptr<const std::vector<Vec>> centers)
      : centers_(std::move(centers)),
        sums_(centers_->size()),
        counts_(centers_->size(), 0.0) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    const Vec p = mapreduce::decode_vec(value);
    const auto c = static_cast<std::size_t>(nearest_center(p, *centers_));
    add_in_place(sums_[c], p);
    counts_[c] += 1.0;
  }

  void cleanup(mapreduce::Context& ctx) override {
    // In-mapper combining (one partial per cluster per task — what the
    // combiner would produce anyway, with identical shuffle volume).
    for (std::size_t c = 0; c < counts_.size(); ++c) {
      if (counts_[c] > 0.0) {
        ctx.emit(std::to_string(c), encode_partial(counts_[c], sums_[c]));
      }
    }
  }

 private:
  std::shared_ptr<const std::vector<Vec>> centers_;
  std::vector<Vec> sums_;
  std::vector<double> counts_;
};

class KMeansReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    double count = 0.0;
    Vec sum;
    for (auto v : values) {
      auto [c, s] = decode_partial(v);
      count += c;
      add_in_place(sum, s);
    }
    ctx.emit(std::string(key), encode_partial(count, mean_of(std::move(sum), count)));
  }
};

}  // namespace

ClusteringRun kmeans_cluster(const Dataset& data, const KMeansConfig& config,
                             std::vector<Vec> initial_centers) {
  auto centers = std::make_shared<std::vector<Vec>>(
      initial_centers.empty() ? seed_centers(data, config.k) : std::move(initial_centers));

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);

  ClusteringRun run;
  run.algorithm = "kmeans";
  run.iteration_centers.push_back(*centers);

  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "kmeans-iter" + std::to_string(iter);
    spec.config.num_reduces = config.base.num_reduces;
    spec.config.cost.map_cpu_per_record = 4e-6 * static_cast<double>(centers->size());
    spec.config.cost.map_cpu_per_byte = 1.5e-8;
    auto snapshot = centers;  // mappers see this iteration's centers
    spec.mapper = [snapshot] { return std::make_unique<KMeansMapper>(snapshot); };
    spec.reducer = [] { return std::make_unique<KMeansReducer>(); };

    auto result = runner.run(spec, records, config.base.num_splits);
    ++run.iterations;

    std::vector<Vec> next = *centers;  // empty clusters keep their center
    double max_move = 0.0;
    for (const mapreduce::KV& kv : result.output) {
      const auto c = static_cast<std::size_t>(std::stoul(kv.key));
      auto [count, mean] = decode_partial(kv.value);
      if (count > 0.0) {
        max_move = std::max(max_move, euclidean(mean, (*centers)[c]));
        next[c] = std::move(mean);
      }
    }
    run.jobs.push_back(std::move(result));
    centers = std::make_shared<std::vector<Vec>>(std::move(next));
    run.iteration_centers.push_back(*centers);
    if (max_move < config.base.convergence_delta) break;
  }

  run.centers = *centers;
  run.assignments.reserve(data.size());
  for (const Vec& p : data.points) run.assignments.push_back(nearest_center(p, run.centers));
  return run;
}

}  // namespace vhadoop::ml

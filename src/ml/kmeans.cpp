#include "ml/kmeans.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "sim/rng.hpp"

namespace vhadoop::ml {

std::vector<Vec> seed_centers(const Dataset& data, int k, std::uint64_t seed) {
  if (k <= 0) throw std::invalid_argument("k <= 0");
  if (data.size() < static_cast<std::size_t>(k)) {
    throw std::invalid_argument("k exceeds dataset size");
  }
  sim::Rng rng(seed);
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<Vec> centers;
  centers.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) centers.push_back(data.points[idx[static_cast<std::size_t>(c)]]);
  return centers;
}

namespace {

/// Value payload of a partial cluster observation: [count, sum...]. Built
/// with two memcpys straight into the output string — no intermediate Vec.
std::string encode_partial(double count, std::span<const double> sum) {
  std::string out((sum.size() + 1) * sizeof(double), '\0');
  std::memcpy(out.data(), &count, sizeof(double));
  if (!sum.empty()) std::memcpy(out.data() + sizeof(double), sum.data(), sum.size() * sizeof(double));
  return out;
}

std::pair<double, Vec> decode_partial(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  const double count = payload.empty() ? 0.0 : payload[0];
  Vec sum(payload.begin() + (payload.empty() ? 0 : 1), payload.end());
  return {count, std::move(sum)};
}

class KMeansMapper : public mapreduce::Mapper {
 public:
  explicit KMeansMapper(std::shared_ptr<const CenterMatrix> centers)
      : centers_(std::move(centers)),
        sums_(centers_->rows() * centers_->cols(), 0.0),
        counts_(centers_->rows(), 0.0) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    // Arena-backed values are 8-byte aligned, so this is a zero-copy read.
    const auto p = mapreduce::decode_vec_view(value, scratch_);
    const auto c = static_cast<std::size_t>(nearest_center(p, *centers_));
    double* sum = sums_.data() + c * centers_->cols();
    for (std::size_t i = 0; i < p.size(); ++i) sum[i] += p[i];
    counts_[c] += 1.0;
  }

  void cleanup(mapreduce::Context& ctx) override {
    // In-mapper combining (one partial per cluster per task — what the
    // combiner would produce anyway, with identical shuffle volume).
    for (std::size_t c = 0; c < counts_.size(); ++c) {
      if (counts_[c] > 0.0) {
        ctx.emit(std::to_string(c),
                 encode_partial(counts_[c], {sums_.data() + c * centers_->cols(), centers_->cols()}));
      }
    }
  }

 private:
  std::shared_ptr<const CenterMatrix> centers_;
  std::vector<double> sums_;  // row-major [cluster][dim] accumulators
  std::vector<double> counts_;
  std::vector<double> scratch_;
};

class KMeansReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    double count = 0.0;
    sum_.clear();
    for (auto v : values) {
      const auto payload = mapreduce::decode_vec_view(v, scratch_);
      if (payload.empty()) continue;
      count += payload[0];
      const auto s = payload.subspan(1);
      if (sum_.empty()) sum_.assign(s.begin(), s.end());
      else {
        check_same_dim(sum_, s);
        for (std::size_t i = 0; i < s.size(); ++i) sum_[i] += s[i];
      }
    }
    if (count > 0.0) scale_in_place(sum_, 1.0 / count);
    ctx.emit(key, encode_partial(count, sum_));
  }

 private:
  Vec sum_;
  std::vector<double> scratch_;
};

}  // namespace

ClusteringRun kmeans_cluster(const Dataset& data, const KMeansConfig& config,
                             std::vector<Vec> initial_centers) {
  auto centers = std::make_shared<std::vector<Vec>>(
      initial_centers.empty() ? seed_centers(data, config.k) : std::move(initial_centers));

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);

  ClusteringRun run;
  run.algorithm = "kmeans";
  run.iteration_centers.push_back(*centers);

  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "kmeans-iter" + std::to_string(iter);
    spec.config.num_reduces = config.base.num_reduces;
    spec.config.cost.map_cpu_per_record = 4e-6 * static_cast<double>(centers->size());
    spec.config.cost.map_cpu_per_byte = 1.5e-8;
    // Mappers see this iteration's centers as one flat row-major snapshot.
    auto snapshot = std::make_shared<const CenterMatrix>(*centers);
    spec.mapper = [snapshot] { return std::make_unique<KMeansMapper>(snapshot); };
    spec.reducer = [] { return std::make_unique<KMeansReducer>(); };

    auto result = runner.run(spec, records, config.base.num_splits);
    ++run.iterations;

    std::vector<Vec> next = *centers;  // empty clusters keep their center
    double max_move = 0.0;
    for (const mapreduce::KV& kv : result.output) {
      const auto c = static_cast<std::size_t>(std::stoul(kv.key));
      auto [count, mean] = decode_partial(kv.value);
      if (count > 0.0) {
        max_move = std::max(max_move, euclidean(mean, (*centers)[c]));
        next[c] = std::move(mean);
      }
    }
    run.jobs.push_back(std::move(result));
    centers = std::make_shared<std::vector<Vec>>(std::move(next));
    run.iteration_centers.push_back(*centers);
    if (max_move < config.base.convergence_delta) break;
  }

  run.centers = *centers;
  run.assignments = assign_nearest(data, run.centers, config.base.threads);
  return run;
}

}  // namespace vhadoop::ml

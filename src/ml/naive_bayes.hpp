#pragma once

#include <map>
#include <string>
#include <vector>

#include "mapreduce/job.hpp"
#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// Multinomial Naive Bayes text classifier (the *classification* category
/// of the paper's Machine Learning Algorithm Library; Mahout's
/// TrainClassifier/TestClassifier pair). Training is one MapReduce job:
/// mappers emit per-(label, token) counts with in-mapper combining, the
/// reducer aggregates; the driver assembles the smoothed model.
/// Classification is a map-only job scoring documents against the model.
struct LabeledDoc {
  std::string label;
  std::vector<std::string> tokens;
};

struct NaiveBayesModel {
  /// log P(label).
  std::map<std::string, double> log_prior;
  /// log P(token | label), Laplace-smoothed.
  std::map<std::string, std::map<std::string, double>> log_likelihood;
  /// Smoothing fallback per label: log( alpha / (total + alpha * |V|) ).
  std::map<std::string, double> log_unseen;
  std::size_t vocabulary_size = 0;

  std::string classify(const std::vector<std::string>& tokens) const;
};

struct NaiveBayesRun {
  NaiveBayesModel model;
  std::vector<mapreduce::JobResult> jobs;  ///< [0] = train (for sim replay)
};

struct NaiveBayesConfig {
  double alpha = 1.0;  ///< Laplace smoothing
  int num_splits = 4;
  int num_reduces = 1;
  unsigned threads = 0;
};

/// Train via MapReduce over the labeled corpus.
NaiveBayesRun train_naive_bayes(const std::vector<LabeledDoc>& docs,
                                const NaiveBayesConfig& config = {});

/// Classify a corpus with a trained model through a map-only MapReduce job;
/// returns (doc index -> predicted label) plus the measured job.
std::pair<std::vector<std::string>, mapreduce::JobResult> classify_naive_bayes(
    const NaiveBayesModel& model, const std::vector<LabeledDoc>& docs,
    const NaiveBayesConfig& config = {});

/// Synthetic, separable text-classification corpus: each class draws its
/// tokens from a shifted Zipf window of a shared vocabulary.
std::vector<LabeledDoc> synthetic_labeled_corpus(int classes, int docs_per_class,
                                                 int tokens_per_doc, std::uint64_t seed = 7);

}  // namespace vhadoop::ml

#pragma once

#include <string>
#include <vector>

#include "mapreduce/job.hpp"
#include "mapreduce/local_runner.hpp"
#include "ml/dataset.hpp"
#include "ml/vector.hpp"

namespace vhadoop::ml {

/// Common result of every clustering driver: the final model, per-point
/// assignments where the algorithm defines them, per-iteration center
/// snapshots (Fig. 8 renders these), and the measured MapReduce jobs
/// (one per iteration) for replay on the simulated virtual cluster.
struct ClusteringRun {
  std::string algorithm;
  std::vector<Vec> centers;
  std::vector<int> assignments;                 // -1 where undefined
  std::vector<std::vector<Vec>> iteration_centers;
  std::vector<mapreduce::JobResult> jobs;
  int iterations = 0;
};

/// Shared knobs for the iterative drivers.
struct ClusteringConfig {
  int num_splits = 4;      ///< map tasks per job (block count of the input)
  int num_reduces = 1;
  int max_iterations = 10;
  double convergence_delta = 1e-3;  ///< max center movement to stop
  unsigned threads = 0;             ///< 0 = hardware concurrency
};

/// Sum of squared distances from each point to its nearest center — the
/// objective k-means style algorithms must not increase (tests rely on it).
double total_cost(const Dataset& data, const std::vector<Vec>& centers);

/// Nearest-center index (squared Euclidean).
int nearest_center(const Vec& point, const std::vector<Vec>& centers);

/// Row-major flat center storage: one contiguous buffer instead of k
/// separately heap-allocated Vecs, so a nearest-center scan walks memory
/// linearly (the hot loop of every k-means-family iteration).
class CenterMatrix {
 public:
  CenterMatrix() = default;
  explicit CenterMatrix(const std::vector<Vec>& centers);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::span<const double> row(std::size_t i) const { return {data_.data() + i * cols_, cols_}; }

 private:
  std::vector<double> data_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Nearest-center index against flat row-major centers; identical distance
/// arithmetic (and therefore identical ties/results) to the Vec overload.
int nearest_center(std::span<const double> point, const CenterMatrix& centers);

/// Final O(n·k) assignment pass, parallelized over the runner's thread
/// pool. Each point's assignment is computed independently into its own
/// slot, so the result is identical for every thread count.
std::vector<int> assign_nearest(const Dataset& data, const std::vector<Vec>& centers,
                                unsigned threads);

}  // namespace vhadoop::ml

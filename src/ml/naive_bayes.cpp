#include "ml/naive_bayes.hpp"

#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "mapreduce/local_runner.hpp"
#include "sim/rng.hpp"

namespace vhadoop::ml {

namespace {

/// Records carry "label<TAB>tok tok tok".
std::string encode_doc(const LabeledDoc& doc) {
  std::string s = doc.label;
  s += '\t';
  for (std::size_t i = 0; i < doc.tokens.size(); ++i) {
    if (i) s += ' ';
    s += doc.tokens[i];
  }
  return s;
}

LabeledDoc decode_doc(std::string_view s) {
  LabeledDoc doc;
  const auto tab = s.find('\t');
  doc.label = std::string(s.substr(0, tab));
  std::size_t i = tab + 1;
  while (i < s.size()) {
    auto j = s.find(' ', i);
    if (j == std::string_view::npos) j = s.size();
    if (j > i) doc.tokens.emplace_back(s.substr(i, j - i));
    i = j + 1;
  }
  return doc;
}

std::vector<mapreduce::KV> to_records(const std::vector<LabeledDoc>& docs) {
  std::vector<mapreduce::KV> records;
  records.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    records.push_back({std::to_string(i), encode_doc(docs[i])});
  }
  return records;
}

/// Trainer: emits ("label\x1ftoken", count) per token and
/// ("label\x1f", doc count) for the priors; in-mapper combining.
class TrainMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    // Tokenize the raw record in place (no LabeledDoc materialization); one
    // reused key buffer holds "label\x1f" + token for the count lookups.
    const auto tab = value.find('\t');
    key_buf_.assign(value.substr(0, tab));
    key_buf_ += '\x1f';
    counts_[key_buf_] += 1;
    const std::size_t base = key_buf_.size();
    std::size_t i = tab + 1;
    while (i < value.size()) {
      auto j = value.find(' ', i);
      if (j == std::string_view::npos) j = value.size();
      if (j > i) {
        key_buf_.resize(base);
        key_buf_.append(value.substr(i, j - i));
        counts_[key_buf_] += 1;
      }
      i = j + 1;
    }
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (const auto& [key, n] : counts_) ctx.emit(key, mapreduce::encode_i64(n));
  }

 private:
  std::map<std::string, std::int64_t> counts_;
  std::string key_buf_;
};

class SumReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::int64_t sum = 0;
    for (auto v : values) sum += mapreduce::decode_i64(v);
    ctx.emit(key, mapreduce::encode_i64(sum));
  }
};

class ClassifyMapper : public mapreduce::Mapper {
 public:
  explicit ClassifyMapper(std::shared_ptr<const NaiveBayesModel> model)
      : model_(std::move(model)) {}

  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override {
    const LabeledDoc doc = decode_doc(value);
    ctx.emit(key, model_->classify(doc.tokens));
  }

 private:
  std::shared_ptr<const NaiveBayesModel> model_;
};

class IdentityReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    for (auto v : values) ctx.emit(key, v);
  }
};

}  // namespace

std::string NaiveBayesModel::classify(const std::vector<std::string>& tokens) const {
  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& [label, prior] : log_prior) {
    double score = prior;
    const auto& likelihood = log_likelihood.at(label);
    const double unseen = log_unseen.at(label);
    for (const std::string& tok : tokens) {
      auto it = likelihood.find(tok);
      score += (it != likelihood.end()) ? it->second : unseen;
    }
    if (score > best_score) {
      best_score = score;
      best = label;
    }
  }
  return best;
}

NaiveBayesRun train_naive_bayes(const std::vector<LabeledDoc>& docs,
                                const NaiveBayesConfig& config) {
  mapreduce::JobSpec spec;
  spec.config.name = "nbtrain";
  spec.config.num_reduces = config.num_reduces;
  spec.config.cost.map_cpu_per_byte = 4e-8;
  spec.config.cost.map_cpu_per_record = 2e-6;
  spec.mapper = [] { return std::make_unique<TrainMapper>(); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };

  mapreduce::LocalJobRunner runner(config.threads);
  const auto records = to_records(docs);

  NaiveBayesRun run;
  run.jobs.push_back(runner.run(spec, records, config.num_splits));

  // Assemble the model from (label \x1f token?) -> count.
  std::map<std::string, std::int64_t> doc_counts;
  std::map<std::string, std::map<std::string, std::int64_t>> token_counts;
  std::map<std::string, std::int64_t> total_tokens;
  std::set<std::string> vocab;
  for (const mapreduce::KV& kv : run.jobs[0].output) {
    const auto sep = kv.key.find('\x1f');
    const std::string label = kv.key.substr(0, sep);
    const std::string token = kv.key.substr(sep + 1);
    const std::int64_t n = mapreduce::decode_i64(kv.value);
    if (token.empty()) {
      doc_counts[label] += n;
    } else {
      token_counts[label][token] += n;
      total_tokens[label] += n;
      vocab.insert(token);
    }
  }
  NaiveBayesModel& model = run.model;
  model.vocabulary_size = vocab.size();
  std::int64_t total_docs = 0;
  for (const auto& [label, n] : doc_counts) total_docs += n;
  const double v = static_cast<double>(vocab.size());
  for (const auto& [label, n] : doc_counts) {
    model.log_prior[label] =
        std::log(static_cast<double>(n) / static_cast<double>(total_docs));
    const double denom = static_cast<double>(total_tokens[label]) + config.alpha * v;
    model.log_unseen[label] = std::log(config.alpha / denom);
    auto& out = model.log_likelihood[label];
    for (const auto& [token, count] : token_counts[label]) {
      out[token] = std::log((static_cast<double>(count) + config.alpha) / denom);
    }
  }
  return run;
}

std::pair<std::vector<std::string>, mapreduce::JobResult> classify_naive_bayes(
    const NaiveBayesModel& model, const std::vector<LabeledDoc>& docs,
    const NaiveBayesConfig& config) {
  auto shared = std::make_shared<const NaiveBayesModel>(model);
  mapreduce::JobSpec spec;
  spec.config.name = "nbclassify";
  spec.config.num_reduces = 1;
  spec.config.cost.map_cpu_per_byte = 6e-8;
  spec.mapper = [shared] { return std::make_unique<ClassifyMapper>(shared); };
  spec.reducer = [] { return std::make_unique<IdentityReducer>(); };

  mapreduce::LocalJobRunner runner(config.threads);
  auto result = runner.run(spec, to_records(docs), config.num_splits);

  std::vector<std::string> predicted(docs.size());
  for (const mapreduce::KV& kv : result.output) {
    predicted[static_cast<std::size_t>(std::stoul(kv.key))] = kv.value;
  }
  return {std::move(predicted), std::move(result)};
}

std::vector<LabeledDoc> synthetic_labeled_corpus(int classes, int docs_per_class,
                                                 int tokens_per_doc, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::ZipfSampler zipf(200, 1.0);
  std::vector<LabeledDoc> docs;
  docs.reserve(static_cast<std::size_t>(classes) * docs_per_class);
  for (int c = 0; c < classes; ++c) {
    for (int d = 0; d < docs_per_class; ++d) {
      LabeledDoc doc;
      doc.label = "class" + std::to_string(c);
      for (int t = 0; t < tokens_per_doc; ++t) {
        // 80% class-specific window, 20% shared stop-words.
        const std::size_t rank = zipf.sample(rng);
        if (rng.uniform() < 0.8) {
          doc.tokens.push_back("w" + std::to_string(c * 1000 + static_cast<int>(rank)));
        } else {
          doc.tokens.push_back("stop" + std::to_string(rank % 20));
        }
      }
      docs.push_back(std::move(doc));
    }
  }
  rng.shuffle(docs);
  return docs;
}

}  // namespace vhadoop::ml

#pragma once

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// Clustering quality metrics used to validate the algorithm library
/// (Mahout ships the same evaluators in its `clustering` utilities).

/// Mean silhouette coefficient in [-1, 1]; higher = better separated.
/// O(n^2) — intended for test-scale data.
double silhouette(const Dataset& data, const std::vector<int>& assignments);

/// Davies-Bouldin index; lower = better (0 is perfect separation).
double davies_bouldin(const Dataset& data, const std::vector<int>& assignments);

/// Within-cluster sum of squared distances to centroids.
double wcss(const Dataset& data, const std::vector<int>& assignments);

/// Adjusted-for-chance agreement between two labelings (Rand index,
/// unadjusted): fraction of point pairs on which they agree.
double rand_index(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace vhadoop::ml

#include "ml/quality.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace vhadoop::ml {

namespace {

std::map<int, std::vector<std::size_t>> members_of(const std::vector<int>& assignments) {
  std::map<int, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    members[assignments[i]].push_back(i);
  }
  return members;
}

std::map<int, Vec> centroids_of(const Dataset& data, const std::vector<int>& assignments) {
  std::map<int, Vec> centroids;
  std::map<int, double> counts;
  for (std::size_t i = 0; i < data.size(); ++i) {
    add_in_place(centroids[assignments[i]], data.points[i]);
    counts[assignments[i]] += 1.0;
  }
  for (auto& [c, sum] : centroids) scale_in_place(sum, 1.0 / counts[c]);
  return centroids;
}

void check(const Dataset& data, const std::vector<int>& assignments) {
  if (data.size() != assignments.size()) {
    throw std::invalid_argument("quality: assignments size mismatch");
  }
  if (data.size() == 0) throw std::invalid_argument("quality: empty dataset");
}

}  // namespace

double silhouette(const Dataset& data, const std::vector<int>& assignments) {
  check(data, assignments);
  const auto members = members_of(assignments);
  if (members.size() < 2) return 0.0;

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& own = members.at(assignments[i]);
    if (own.size() < 2) continue;  // silhouette undefined for singletons
    double a = 0.0;
    for (std::size_t j : own) {
      if (j != i) a += euclidean(data.points[i], data.points[j]);
    }
    a /= static_cast<double>(own.size() - 1);

    double b = std::numeric_limits<double>::infinity();
    for (const auto& [cluster, other] : members) {
      if (cluster == assignments[i]) continue;
      double mean = 0.0;
      for (std::size_t j : other) mean += euclidean(data.points[i], data.points[j]);
      b = std::min(b, mean / static_cast<double>(other.size()));
    }
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

double davies_bouldin(const Dataset& data, const std::vector<int>& assignments) {
  check(data, assignments);
  const auto members = members_of(assignments);
  const auto centroids = centroids_of(data, assignments);
  if (members.size() < 2) return 0.0;

  // Per-cluster scatter.
  std::map<int, double> scatter;
  for (const auto& [cluster, idx] : members) {
    double s = 0.0;
    for (std::size_t i : idx) s += euclidean(data.points[i], centroids.at(cluster));
    scatter[cluster] = s / static_cast<double>(idx.size());
  }
  double db = 0.0;
  for (const auto& [ci, si] : scatter) {
    double worst = 0.0;
    for (const auto& [cj, sj] : scatter) {
      if (ci == cj) continue;
      const double d = euclidean(centroids.at(ci), centroids.at(cj));
      if (d > 0) worst = std::max(worst, (si + sj) / d);
    }
    db += worst;
  }
  return db / static_cast<double>(scatter.size());
}

double wcss(const Dataset& data, const std::vector<int>& assignments) {
  check(data, assignments);
  const auto centroids = centroids_of(data, assignments);
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    total += squared_euclidean(data.points[i], centroids.at(assignments[i]));
  }
  return total;
}

double rand_index(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("rand_index: size mismatch");
  if (a.size() < 2) return 1.0;
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      // vlint: allow(no-exact-float-compare) audited PR 8: a/b are int label vectors; the names collide with doubles declared above
      agree += ((a[i] == a[j]) == (b[i] == b[j]));
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace vhadoop::ml

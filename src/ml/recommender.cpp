#include "ml/recommender.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "mapreduce/local_runner.hpp"
#include "sim/rng.hpp"

namespace vhadoop::ml {

namespace {

/// Group ratings per user (the "user vector" input of the pipeline).
std::map<std::int64_t, std::vector<Rating>> user_vectors(const std::vector<Rating>& ratings) {
  std::map<std::int64_t, std::vector<Rating>> by_user;
  for (const Rating& r : ratings) by_user[r.user].push_back(r);
  return by_user;
}

/// Records for job 1: key = user id, value = packed (item, value) pairs.
std::vector<mapreduce::KV> vector_records(
    const std::map<std::int64_t, std::vector<Rating>>& by_user) {
  std::vector<mapreduce::KV> records;
  records.reserve(by_user.size());
  for (const auto& [user, prefs] : by_user) {
    std::vector<double> packed;
    packed.reserve(prefs.size() * 2);
    for (const Rating& r : prefs) {
      packed.push_back(static_cast<double>(r.item));
      packed.push_back(r.value);
    }
    records.push_back({mapreduce::encode_i64(user), mapreduce::encode_vec(packed)});
  }
  return records;
}

/// Job 1 mapper: every co-rated item pair in a user vector counts once.
/// Iterates the packed (item, value) payload in place — no Rating
/// materialization per record.
class CooccurrenceMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    const auto packed = mapreduce::decode_vec_view(value, scratch_);
    for (std::size_t i = 0; i + 1 < packed.size(); i += 2) {
      const auto a = static_cast<std::int64_t>(packed[i]);
      for (std::size_t j = 0; j + 1 < packed.size(); j += 2) {
        const auto b = static_cast<std::int64_t>(packed[j]);
        if (a != b) counts_[{a, b}] += 1.0;
      }
    }
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (const auto& [pair, n] : counts_) {
      const double payload[2] = {static_cast<double>(pair.second), n};
      ctx.emit(mapreduce::encode_i64(pair.first), mapreduce::encode_vec(payload));
    }
  }

 private:
  std::map<std::pair<std::int64_t, std::int64_t>, double> counts_;
  std::vector<double> scratch_;
};

/// Job 1 reducer: assemble one co-occurrence matrix row.
class RowReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::map<std::int64_t, double> row;
    for (auto v : values) {
      const auto payload = mapreduce::decode_vec_view(v, scratch_);
      row[static_cast<std::int64_t>(payload[0])] += payload[1];
    }
    std::vector<double> packed;
    packed.reserve(row.size() * 2);
    for (const auto& [item, n] : row) {
      packed.push_back(static_cast<double>(item));
      packed.push_back(n);
    }
    ctx.emit(key, mapreduce::encode_vec(packed));
  }

 private:
  std::vector<double> scratch_;
};

/// Job 2 mapper: user vector x co-occurrence matrix -> top-N unseen items.
class RecommendMapper : public mapreduce::Mapper {
 public:
  RecommendMapper(std::shared_ptr<const std::map<std::int64_t, std::map<std::int64_t, double>>> co,
                  int top_n)
      : co_(std::move(co)), top_n_(top_n) {}

  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override {
    const auto packed = mapreduce::decode_vec_view(value, scratch_);
    std::set<std::int64_t> seen;
    for (std::size_t i = 0; i + 1 < packed.size(); i += 2) {
      seen.insert(static_cast<std::int64_t>(packed[i]));
    }

    std::map<std::int64_t, double> score;
    for (std::size_t i = 0; i + 1 < packed.size(); i += 2) {
      auto row = co_->find(static_cast<std::int64_t>(packed[i]));
      // vlint: allow(no-exact-float-compare) audited PR 8: iterator-vs-end compare; row collides with the double-valued map in CombineReducer
      if (row == co_->end()) continue;
      for (const auto& [item, n] : row->second) {
        if (!seen.contains(item)) score[item] += n * packed[i + 1];
      }
    }
    std::vector<std::pair<double, std::int64_t>> ranked;
    ranked.reserve(score.size());
    for (const auto& [item, s] : score) ranked.push_back({s, item});
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;  // deterministic tie-break
    });
    std::vector<double> top;
    for (int i = 0; i < top_n_ && i < static_cast<int>(ranked.size()); ++i) {
      top.push_back(static_cast<double>(ranked[static_cast<std::size_t>(i)].second));
    }
    ctx.emit(key, mapreduce::encode_vec(top));
  }

 private:
  std::shared_ptr<const std::map<std::int64_t, std::map<std::int64_t, double>>> co_;
  int top_n_;
  std::vector<double> scratch_;
};

class PassThroughReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    for (auto v : values) ctx.emit(key, v);
  }
};

}  // namespace

RecommenderRun recommend_items(const std::vector<Rating>& ratings,
                               const RecommenderConfig& config) {
  mapreduce::LocalJobRunner runner(config.threads);
  const auto by_user = user_vectors(ratings);
  const auto records = vector_records(by_user);

  RecommenderRun run;

  // --- job 1: co-occurrence matrix -----------------------------------------
  mapreduce::JobSpec co_spec;
  co_spec.config.name = "item-cooccurrence";
  co_spec.config.num_reduces = config.num_reduces;
  co_spec.config.cost.map_cpu_per_record = 6e-6;
  co_spec.config.cost.map_cpu_per_byte = 3e-8;
  co_spec.mapper = [] { return std::make_unique<CooccurrenceMapper>(); };
  co_spec.reducer = [] { return std::make_unique<RowReducer>(); };
  run.jobs.push_back(runner.run(co_spec, records, config.num_splits));

  auto co = std::make_shared<std::map<std::int64_t, std::map<std::int64_t, double>>>();
  for (const mapreduce::KV& kv : run.jobs[0].output) {
    const std::int64_t item = mapreduce::decode_i64(kv.key);
    const auto packed = mapreduce::decode_vec(kv.value);
    auto& row = (*co)[item];
    for (std::size_t i = 0; i + 1 < packed.size(); i += 2) {
      row[static_cast<std::int64_t>(packed[i])] += packed[i + 1];
    }
  }
  run.cooccurrence = *co;

  // --- job 2: per-user recommendation ---------------------------------------
  mapreduce::JobSpec rec_spec;
  rec_spec.config.name = "recommend";
  rec_spec.config.num_reduces = 1;
  rec_spec.config.cost.map_cpu_per_record = 8e-6;
  rec_spec.config.cost.map_cpu_per_byte = 3e-8;
  const int top_n = config.top_n;
  rec_spec.mapper = [co, top_n] { return std::make_unique<RecommendMapper>(co, top_n); };
  rec_spec.reducer = [] { return std::make_unique<PassThroughReducer>(); };
  run.jobs.push_back(runner.run(rec_spec, records, config.num_splits));

  for (const mapreduce::KV& kv : run.jobs[1].output) {
    const std::int64_t user = mapreduce::decode_i64(kv.key);
    for (double item : mapreduce::decode_vec(kv.value)) {
      run.recommendations[user].push_back(static_cast<std::int64_t>(item));
    }
  }
  return run;
}

std::vector<Rating> synthetic_ratings(int groups, int users_per_group, int items_per_group,
                                      double rated_fraction, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Rating> ratings;
  for (int g = 0; g < groups; ++g) {
    for (int u = 0; u < users_per_group; ++u) {
      const std::int64_t user = g * users_per_group + u;
      for (int i = 0; i < items_per_group; ++i) {
        if (rng.uniform() < rated_fraction) {
          ratings.push_back({user, static_cast<std::int64_t>(g * items_per_group + i),
                             rng.uniform(3.0, 5.0)});
        }
      }
      // Sparse out-of-group noise.
      if (rng.uniform() < 0.3) {
        const std::int64_t noise_item = rng.uniform_int(
            static_cast<std::uint64_t>(groups) * static_cast<std::uint64_t>(items_per_group));
        ratings.push_back({user, noise_item, rng.uniform(1.0, 2.0)});
      }
    }
  }
  return ratings;
}

}  // namespace vhadoop::ml

#include "ml/minhash.hpp"

#include <charconv>
#include <cmath>
#include <memory>

namespace vhadoop::ml {

std::vector<std::int64_t> feature_set(const Vec& point, double bucket_width) {
  std::vector<std::int64_t> set;
  set.reserve(point.size());
  for (std::size_t d = 0; d < point.size(); ++d) {
    // Encode (dimension, bucket) as one integer element of the set.
    const auto bucket =
        static_cast<std::int64_t>(std::floor(point[d] / bucket_width));
    set.push_back(static_cast<std::int64_t>(d) * 1000003 + bucket);
  }
  return set;
}

namespace {

/// The i-th universal hash over set elements (splitmix-style mixing with a
/// per-function odd multiplier — Mahout's MurmurHash family stand-in).
std::uint64_t hash_element(std::int64_t element, int fn) {
  std::uint64_t z = static_cast<std::uint64_t>(element) +
                    0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(fn) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class MinHashMapper : public mapreduce::Mapper {
 public:
  explicit MinHashMapper(const MinHashConfig& cfg) : cfg_(cfg) {}

  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override {
    const auto p = mapreduce::decode_vec_view(value, scratch_);
    // Inline feature_set: (dimension, bucket) elements feed the hash bank
    // directly, so the hot loop makes no heap allocations at all.
    minima_.assign(static_cast<std::size_t>(cfg_.num_hash_functions), ~0ULL);
    for (std::size_t d = 0; d < p.size(); ++d) {
      const auto bucket = static_cast<std::int64_t>(std::floor(p[d] / cfg_.bucket_width));
      const std::int64_t e = static_cast<std::int64_t>(d) * 1000003 + bucket;
      for (int f = 0; f < cfg_.num_hash_functions; ++f) {
        minima_[static_cast<std::size_t>(f)] =
            std::min(minima_[static_cast<std::size_t>(f)], hash_element(e, f));
      }
    }
    // Band the minima: every group of `keygroups` consecutive minima forms
    // one cluster key; a point lands in several buckets (standard LSH).
    for (int f = 0; f + cfg_.keygroups <= cfg_.num_hash_functions; f += cfg_.keygroups) {
      key_buf_.clear();
      for (int g = 0; g < cfg_.keygroups; ++g) {
        char digits[24];
        const auto [end, ec] = std::to_chars(
            digits, digits + sizeof(digits), minima_[static_cast<std::size_t>(f + g)] % 100000);
        (void)ec;
        key_buf_.append(digits, end);
        key_buf_ += '-';
      }
      ctx.emit(key_buf_, key);
    }
  }

 private:
  MinHashConfig cfg_;
  std::vector<double> scratch_;
  std::vector<std::uint64_t> minima_;
  std::string key_buf_;
};

class MinHashReducer : public mapreduce::Reducer {
 public:
  explicit MinHashReducer(int min_size) : min_size_(min_size) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    if (static_cast<int>(values.size()) < min_size_) return;
    for (auto v : values) ctx.emit(key, v);
  }

 private:
  int min_size_;
};

}  // namespace

MinHashRun minhash_cluster(const Dataset& data, const MinHashConfig& config) {
  mapreduce::JobSpec spec;
  spec.config.name = "minhash";
  spec.config.num_reduces = config.base.num_reduces;
  spec.config.cost.map_cpu_per_record =
      1.5e-6 * static_cast<double>(config.num_hash_functions);
  spec.config.cost.map_cpu_per_byte = 4e-8;
  const MinHashConfig cfg = config;
  spec.mapper = [cfg] { return std::make_unique<MinHashMapper>(cfg); };
  const int min_size = config.min_cluster_size;
  spec.reducer = [min_size] { return std::make_unique<MinHashReducer>(min_size); };

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);

  MinHashRun run;
  run.algorithm = "minhash";
  run.jobs.push_back(runner.run(spec, records, config.base.num_splits));
  run.iterations = 1;

  // Keys are hash-partitioned and sorted within each partition, so every
  // cluster's members are consecutive in the output: one map lookup per
  // cluster instead of per member.
  const std::vector<mapreduce::KV>& out = run.jobs[0].output;
  for (std::size_t i = 0; i < out.size();) {
    std::size_t j = i + 1;
    while (j < out.size() && out[j].key == out[i].key) ++j;
    std::vector<std::int64_t>& members = run.clusters[out[i].key];
    members.reserve(members.size() + (j - i));
    for (std::size_t t = i; t < j; ++t) {
      members.push_back(mapreduce::decode_i64(out[t].value));
    }
    i = j;
  }
  // Represent each cluster by its centroid for visualization parity.
  run.assignments.assign(data.size(), -1);
  int cluster_id = 0;
  for (const auto& [key, members] : run.clusters) {
    Vec sum;
    for (std::int64_t id : members) add_in_place(sum, data.points[static_cast<std::size_t>(id)]);
    run.centers.push_back(mean_of(std::move(sum), static_cast<double>(members.size())));
    for (std::int64_t id : members) {
      auto& slot = run.assignments[static_cast<std::size_t>(id)];
      if (slot < 0) slot = cluster_id;  // first (largest-band) bucket wins
    }
    ++cluster_id;
  }
  run.iteration_centers.push_back(run.centers);
  return run;
}

}  // namespace vhadoop::ml

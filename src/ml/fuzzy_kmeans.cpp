#include "ml/fuzzy_kmeans.hpp"

#include <memory>
#include <stdexcept>

#include "ml/kmeans.hpp"

namespace vhadoop::ml {

Vec memberships(const Vec& point, const std::vector<Vec>& centers, double m) {
  if (m <= 1.0) throw std::invalid_argument("fuzzy k-means: m must be > 1");
  const double exponent = 2.0 / (m - 1.0);
  Vec dist(centers.size());
  for (std::size_t j = 0; j < centers.size(); ++j) {
    dist[j] = euclidean(point, centers[j]);
  }
  Vec u(centers.size(), 0.0);
  for (std::size_t j = 0; j < centers.size(); ++j) {
    if (dist[j] == 0.0) {
      // Point coincides with a center: full membership there.
      u.assign(centers.size(), 0.0);
      u[j] = 1.0;
      return u;
    }
    double denom = 0.0;
    for (std::size_t k = 0; k < centers.size(); ++k) {
      denom += std::pow(dist[j] / dist[k], exponent);
    }
    u[j] = 1.0 / denom;
  }
  return u;
}

namespace {

std::string encode_partial(double weight, const Vec& sum) {
  Vec payload;
  payload.reserve(sum.size() + 1);
  payload.push_back(weight);
  payload.insert(payload.end(), sum.begin(), sum.end());
  return mapreduce::encode_vec(payload);
}

std::pair<double, Vec> decode_partial(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  const double w = payload.empty() ? 0.0 : payload[0];
  Vec sum(payload.begin() + (payload.empty() ? 0 : 1), payload.end());
  return {w, std::move(sum)};
}

class FuzzyMapper : public mapreduce::Mapper {
 public:
  FuzzyMapper(std::shared_ptr<const std::vector<Vec>> centers, double m)
      : centers_(std::move(centers)),
        m_(m),
        sums_(centers_->size()),
        weights_(centers_->size(), 0.0) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    const Vec p = mapreduce::decode_vec(value);
    const Vec u = memberships(p, *centers_, m_);
    for (std::size_t j = 0; j < u.size(); ++j) {
      const double w = std::pow(u[j], m_);
      if (w <= 0.0) continue;
      weights_[j] += w;
      Vec wp = scaled(p, w);
      add_in_place(sums_[j], wp);
    }
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (std::size_t j = 0; j < weights_.size(); ++j) {
      if (weights_[j] > 0.0) {
        ctx.emit(std::to_string(j), encode_partial(weights_[j], sums_[j]));
      }
    }
  }

 private:
  std::shared_ptr<const std::vector<Vec>> centers_;
  double m_;
  std::vector<Vec> sums_;
  std::vector<double> weights_;
};

class FuzzyReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    double weight = 0.0;
    Vec sum;
    for (auto v : values) {
      auto [w, s] = decode_partial(v);
      weight += w;
      add_in_place(sum, s);
    }
    ctx.emit(std::string(key), encode_partial(weight, mean_of(std::move(sum), weight)));
  }
};

}  // namespace

ClusteringRun fuzzy_kmeans_cluster(const Dataset& data, const FuzzyKMeansConfig& config,
                                   std::vector<Vec> initial_centers) {
  auto centers = std::make_shared<std::vector<Vec>>(
      initial_centers.empty() ? seed_centers(data, config.k) : std::move(initial_centers));

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);

  ClusteringRun run;
  run.algorithm = "fuzzykmeans";
  run.iteration_centers.push_back(*centers);

  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "fuzzykmeans-iter" + std::to_string(iter);
    spec.config.num_reduces = config.base.num_reduces;
    spec.config.cost.map_cpu_per_record = 9e-6 * static_cast<double>(centers->size());
    spec.config.cost.map_cpu_per_byte = 2e-8;
    auto snapshot = centers;
    const double m = config.m;
    spec.mapper = [snapshot, m] { return std::make_unique<FuzzyMapper>(snapshot, m); };
    spec.reducer = [] { return std::make_unique<FuzzyReducer>(); };

    auto result = runner.run(spec, records, config.base.num_splits);
    ++run.iterations;

    std::vector<Vec> next = *centers;
    double max_move = 0.0;
    for (const mapreduce::KV& kv : result.output) {
      const auto c = static_cast<std::size_t>(std::stoul(kv.key));
      auto [w, mean] = decode_partial(kv.value);
      if (w > 0.0) {
        max_move = std::max(max_move, euclidean(mean, (*centers)[c]));
        next[c] = std::move(mean);
      }
    }
    run.jobs.push_back(std::move(result));
    centers = std::make_shared<std::vector<Vec>>(std::move(next));
    run.iteration_centers.push_back(*centers);
    if (max_move < config.base.convergence_delta) break;
  }

  run.centers = *centers;
  run.assignments.reserve(data.size());
  for (const Vec& p : data.points) run.assignments.push_back(nearest_center(p, run.centers));
  return run;
}

}  // namespace vhadoop::ml

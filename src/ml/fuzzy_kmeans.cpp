#include "ml/fuzzy_kmeans.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "ml/kmeans.hpp"

namespace vhadoop::ml {

namespace {

/// Shared core of the membership computation, writing into caller-owned
/// scratch (`dist`, `u`) so the mapper's hot loop does not allocate.
void memberships_into(std::span<const double> point, const CenterMatrix& centers, double m,
                      Vec& dist, Vec& u) {
  if (m <= 1.0) throw std::invalid_argument("fuzzy k-means: m must be > 1");
  const double exponent = 2.0 / (m - 1.0);
  const std::size_t k = centers.rows();
  dist.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    dist[j] = euclidean(point, centers.row(j));
  }
  u.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    // vlint: allow(no-exact-float-compare) audited PR 8: coincident-center guard; euclidean() of identical points is exactly zero
    if (dist[j] == 0.0) {
      // Point coincides with a center: full membership there.
      u.assign(k, 0.0);
      u[j] = 1.0;
      return;
    }
    double denom = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      denom += std::pow(dist[j] / dist[kk], exponent);
    }
    u[j] = 1.0 / denom;
  }
}

}  // namespace

Vec memberships(const Vec& point, const std::vector<Vec>& centers, double m) {
  const CenterMatrix flat(centers);
  Vec dist, u;
  memberships_into(point, flat, m, dist, u);
  return u;
}

namespace {

std::string encode_partial(double weight, std::span<const double> sum) {
  std::string out((sum.size() + 1) * sizeof(double), '\0');
  std::memcpy(out.data(), &weight, sizeof(double));
  if (!sum.empty()) std::memcpy(out.data() + sizeof(double), sum.data(), sum.size() * sizeof(double));
  return out;
}

std::pair<double, Vec> decode_partial(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  const double w = payload.empty() ? 0.0 : payload[0];
  Vec sum(payload.begin() + (payload.empty() ? 0 : 1), payload.end());
  return {w, std::move(sum)};
}

class FuzzyMapper : public mapreduce::Mapper {
 public:
  FuzzyMapper(std::shared_ptr<const CenterMatrix> centers, double m)
      : centers_(std::move(centers)),
        m_(m),
        sums_(centers_->rows() * centers_->cols(), 0.0),
        weights_(centers_->rows(), 0.0) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    const auto p = mapreduce::decode_vec_view(value, scratch_);
    memberships_into(p, *centers_, m_, dist_, u_);
    const std::size_t dim = centers_->cols();
    for (std::size_t j = 0; j < u_.size(); ++j) {
      const double w = std::pow(u_[j], m_);
      if (w <= 0.0) continue;
      weights_[j] += w;
      double* sum = sums_.data() + j * dim;
      for (std::size_t i = 0; i < p.size(); ++i) sum[i] += p[i] * w;
    }
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (std::size_t j = 0; j < weights_.size(); ++j) {
      if (weights_[j] > 0.0) {
        ctx.emit(std::to_string(j),
                 encode_partial(weights_[j], {sums_.data() + j * centers_->cols(), centers_->cols()}));
      }
    }
  }

 private:
  std::shared_ptr<const CenterMatrix> centers_;
  double m_;
  std::vector<double> sums_;  // row-major [cluster][dim] weighted accumulators
  std::vector<double> weights_;
  std::vector<double> scratch_;
  Vec dist_, u_;
};

class FuzzyReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    double weight = 0.0;
    sum_.clear();
    for (auto v : values) {
      const auto payload = mapreduce::decode_vec_view(v, scratch_);
      if (payload.empty()) continue;
      weight += payload[0];
      const auto s = payload.subspan(1);
      if (sum_.empty()) sum_.assign(s.begin(), s.end());
      else {
        check_same_dim(sum_, s);
        for (std::size_t i = 0; i < s.size(); ++i) sum_[i] += s[i];
      }
    }
    if (weight > 0.0) scale_in_place(sum_, 1.0 / weight);
    ctx.emit(key, encode_partial(weight, sum_));
  }

 private:
  Vec sum_;
  std::vector<double> scratch_;
};

}  // namespace

ClusteringRun fuzzy_kmeans_cluster(const Dataset& data, const FuzzyKMeansConfig& config,
                                   std::vector<Vec> initial_centers) {
  auto centers = std::make_shared<std::vector<Vec>>(
      initial_centers.empty() ? seed_centers(data, config.k) : std::move(initial_centers));

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);

  ClusteringRun run;
  run.algorithm = "fuzzykmeans";
  run.iteration_centers.push_back(*centers);

  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "fuzzykmeans-iter" + std::to_string(iter);
    spec.config.num_reduces = config.base.num_reduces;
    spec.config.cost.map_cpu_per_record = 9e-6 * static_cast<double>(centers->size());
    spec.config.cost.map_cpu_per_byte = 2e-8;
    auto snapshot = std::make_shared<const CenterMatrix>(*centers);
    const double m = config.m;
    spec.mapper = [snapshot, m] { return std::make_unique<FuzzyMapper>(snapshot, m); };
    spec.reducer = [] { return std::make_unique<FuzzyReducer>(); };

    auto result = runner.run(spec, records, config.base.num_splits);
    ++run.iterations;

    std::vector<Vec> next = *centers;
    double max_move = 0.0;
    for (const mapreduce::KV& kv : result.output) {
      const auto c = static_cast<std::size_t>(std::stoul(kv.key));
      auto [w, mean] = decode_partial(kv.value);
      if (w > 0.0) {
        max_move = std::max(max_move, euclidean(mean, (*centers)[c]));
        next[c] = std::move(mean);
      }
    }
    run.jobs.push_back(std::move(result));
    centers = std::make_shared<std::vector<Vec>>(std::move(next));
    run.iteration_centers.push_back(*centers);
    if (max_move < config.base.convergence_delta) break;
  }

  run.centers = *centers;
  run.assignments = assign_nearest(data, run.centers, config.base.threads);
  return run;
}

}  // namespace vhadoop::ml

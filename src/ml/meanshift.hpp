#pragma once

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// Mean-shift clustering via canopies (paper Sec. IV-A, Mahout
/// MeanShiftCanopyDriver): every point starts as a weighted canopy; each
/// iteration's mapper shifts every canopy toward the weighted mean of the
/// canopies within distance T1 of it, and the reducer merges canopies that
/// land within T2 of each other. Clusters of arbitrary shape emerge without
/// an a-priori k; iteration stops when no canopy moves more than the delta.
struct MeanShiftConfig {
  double t1 = 3.0;  ///< attraction window
  double t2 = 1.0;  ///< merge radius
  ClusteringConfig base;
};

ClusteringRun meanshift_cluster(const Dataset& data, const MeanShiftConfig& config);

}  // namespace vhadoop::ml

#pragma once

#include <map>

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// MinHash clustering (paper Sec. IV-A, Mahout MinHashDriver): probabilistic
/// dimension reduction / LSH. Each point's features are discretized into a
/// set; `num_hash_functions` independent hashes are grouped into bands of
/// `keygroups` minima whose concatenation is the cluster key — similar
/// points collide with high probability. The reducer keeps clusters with at
/// least `min_cluster_size` members.
struct MinHashConfig {
  int num_hash_functions = 10;
  int keygroups = 2;            ///< hash minima concatenated per cluster key
  int min_cluster_size = 2;
  double bucket_width = 1.0;    ///< feature discretization step
  ClusteringConfig base;
};

struct MinHashRun : ClusteringRun {
  /// cluster key -> member point ids (ordered: deterministic iteration).
  std::map<std::string, std::vector<std::int64_t>> clusters;
};

/// Discretize a point into its feature-bucket set (exposed for tests).
std::vector<std::int64_t> feature_set(const Vec& point, double bucket_width);

MinHashRun minhash_cluster(const Dataset& data, const MinHashConfig& config);

}  // namespace vhadoop::ml

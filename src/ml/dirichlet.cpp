#include "ml/dirichlet.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "sim/rng.hpp"

namespace vhadoop::ml {

namespace {

/// Log density of a spherical Gaussian (up to the shared 2*pi constant).
double log_pdf(std::span<const double> x, const DirichletModel& m) {
  const double d2 = squared_euclidean(x, m.mean);
  const double var = std::max(1e-6, m.stddev * m.stddev);
  return -0.5 * d2 / var - 0.5 * static_cast<double>(x.size()) * std::log(var);
}

/// Posterior over models for x, written into caller-owned `logp` (the
/// mapper calls this once per record; no allocation in the steady state).
void posterior_into(std::span<const double> x, const std::vector<DirichletModel>& models,
                    Vec& logp) {
  logp.resize(models.size());
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < models.size(); ++j) {
    logp[j] = std::log(std::max(1e-12, models[j].mixture)) + log_pdf(x, models[j]);
    best = std::max(best, logp[j]);
  }
  double z = 0.0;
  for (double& lp : logp) {
    lp = std::exp(lp - best);
    z += lp;
  }
  for (double& lp : logp) lp /= z;
}

Vec posterior(std::span<const double> x, const std::vector<DirichletModel>& models) {
  Vec logp;
  posterior_into(x, models, logp);
  return logp;
}

/// Partial statistics emitted per (model, split): [count, sum|x|^2, sum...].
std::string encode_stats(double count, double sumsq, std::span<const double> sum) {
  std::string out((sum.size() + 2) * sizeof(double), '\0');
  std::memcpy(out.data(), &count, sizeof(double));
  std::memcpy(out.data() + sizeof(double), &sumsq, sizeof(double));
  if (!sum.empty()) {
    std::memcpy(out.data() + 2 * sizeof(double), sum.data(), sum.size() * sizeof(double));
  }
  return out;
}

struct Stats {
  double count = 0.0;
  double sumsq = 0.0;
  Vec sum;
};

Stats decode_stats(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  Stats st;
  if (payload.size() >= 2) {
    st.count = payload[0];
    st.sumsq = payload[1];
    st.sum.assign(payload.begin() + 2, payload.end());
  }
  return st;
}

double norm_sq(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return s;
}

class DirichletMapper : public mapreduce::Mapper {
 public:
  DirichletMapper(std::shared_ptr<const std::vector<DirichletModel>> models, int iteration)
      : models_(std::move(models)), iteration_(iteration),
        counts_(models_->size(), 0.0), sumsqs_(models_->size(), 0.0) {}

  void map(std::string_view key, std::string_view value, mapreduce::Context&) override {
    const auto x = mapreduce::decode_vec_view(value, scratch_);
    if (sums_.empty()) {
      dim_ = x.size();
      sums_.assign(models_->size() * dim_, 0.0);  // row-major [model][dim]
    }
    posterior_into(x, *models_, p_);
    // Gibbs assignment, deterministically seeded by (record, iteration) so
    // the sampling is independent of split layout and thread schedule.
    sim::Rng rng(mapreduce::stable_hash(key) * 0x9e3779b97f4a7c15ULL +
                 static_cast<std::uint64_t>(iteration_));
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t j = p_.size() - 1;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      acc += p_[i];
      if (u <= acc) {
        j = i;
        break;
      }
    }
    counts_[j] += 1.0;
    sumsqs_[j] += norm_sq(x);
    double* sum = sums_.data() + j * dim_;
    for (std::size_t i = 0; i < x.size(); ++i) sum[i] += x[i];
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (std::size_t j = 0; j < counts_.size(); ++j) {
      if (counts_[j] > 0.0) {
        ctx.emit(std::to_string(j),
                 encode_stats(counts_[j], sumsqs_[j], {sums_.data() + j * dim_, dim_}));
      }
    }
  }

 private:
  std::shared_ptr<const std::vector<DirichletModel>> models_;
  int iteration_;
  std::vector<double> counts_;
  std::vector<double> sumsqs_;
  std::vector<double> sums_;
  std::size_t dim_ = 0;
  std::vector<double> scratch_;
  Vec p_;
};

class DirichletReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    double count = 0.0, sumsq = 0.0;
    sum_.clear();
    for (auto v : values) {
      const auto payload = mapreduce::decode_vec_view(v, scratch_);
      if (payload.size() < 2) continue;
      count += payload[0];
      sumsq += payload[1];
      const auto s = payload.subspan(2);
      if (sum_.empty()) sum_.assign(s.begin(), s.end());
      else {
        check_same_dim(sum_, s);
        for (std::size_t i = 0; i < s.size(); ++i) sum_[i] += s[i];
      }
    }
    ctx.emit(key, encode_stats(count, sumsq, sum_));
  }

 private:
  Vec sum_;
  std::vector<double> scratch_;
};

}  // namespace

DirichletRun dirichlet_cluster(const Dataset& data, const DirichletConfig& config) {
  sim::Rng rng(4242);
  const std::size_t dim = data.dim();

  // Initialize: means from random data points, stddev from a coarse data
  // scale estimate, uniform mixture.
  auto models = std::make_shared<std::vector<DirichletModel>>();
  double scale = 0.0;
  for (int s = 0; s < 32; ++s) {
    const Vec& a = data.points[rng.uniform_int(data.size())];
    const Vec& b = data.points[rng.uniform_int(data.size())];
    scale += euclidean(a, b);
  }
  scale = std::max(1e-3, scale / 32.0);
  for (int j = 0; j < config.k; ++j) {
    DirichletModel m;
    m.mixture = 1.0 / config.k;
    m.mean = data.points[rng.uniform_int(data.size())];
    m.stddev = scale;
    models->push_back(std::move(m));
  }

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);

  DirichletRun run;
  run.algorithm = "dirichlet";

  const double n = static_cast<double>(data.size());
  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "dirichlet-iter" + std::to_string(iter);
    spec.config.num_reduces = config.base.num_reduces;
    spec.config.cost.map_cpu_per_record = 1.4e-5 * static_cast<double>(config.k);
    spec.config.cost.map_cpu_per_byte = 2e-8;
    auto snapshot = models;
    spec.mapper = [snapshot, iter] { return std::make_unique<DirichletMapper>(snapshot, iter); };
    spec.reducer = [] { return std::make_unique<DirichletReducer>(); };

    auto result = runner.run(spec, records, config.base.num_splits);
    ++run.iterations;

    auto next = std::make_shared<std::vector<DirichletModel>>(*models);
    for (auto& m : *next) m.count = 0.0;
    for (const mapreduce::KV& kv : result.output) {
      const auto j = static_cast<std::size_t>(std::stoul(kv.key));
      const Stats st = decode_stats(kv.value);
      DirichletModel& m = (*next)[j];
      m.count = st.count;
      if (st.count > 0.0) {
        m.mean = mean_of(st.sum, st.count);
        const double var =
            std::max(1e-6, (st.sumsq / st.count - norm_sq(m.mean)) / static_cast<double>(dim));
        m.stddev = std::sqrt(var);
      }
    }
    // Dirichlet-posterior mixture (expectation form): occupied models grow,
    // empty models retain alpha/k mass to catch new structure.
    for (auto& m : *next) {
      m.mixture = (m.count + config.alpha / config.k) / (n + config.alpha);
    }

    run.jobs.push_back(std::move(result));
    models = std::move(next);
    std::vector<Vec> iter_centers;
    for (const auto& m : *models) {
      if (m.count > 0.0) iter_centers.push_back(m.mean);
    }
    run.iteration_centers.push_back(std::move(iter_centers));
  }

  run.models = *models;
  for (const auto& m : *models) {
    if (m.count > 0.0) run.centers.push_back(m.mean);
  }
  // MAP assignment against the final mixture.
  run.assignments.reserve(data.size());
  for (const Vec& p : data.points) {
    const Vec post = posterior(p, *models);
    run.assignments.push_back(static_cast<int>(
        std::distance(post.begin(), std::max_element(post.begin(), post.end()))));
  }
  return run;
}

}  // namespace vhadoop::ml

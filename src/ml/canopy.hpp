#pragma once

#include <span>

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// Canopy clustering (paper Sec. IV-A): a single cheap pass that picks
/// canopy centers using two thresholds T1 > T2. Mahout's MapReduce form:
/// each mapper builds canopies over its split and emits the local centers;
/// a single reducer re-canopies the centers into the final set. Often used
/// to seed k-means.
struct CanopyConfig {
  double t1 = 3.0;  ///< loose threshold: points within T1 join a canopy
  double t2 = 1.5;  ///< tight threshold: points within T2 spawn no new canopy
  ClusteringConfig base;
};

/// The sequential canopy kernel, reused verbatim by the mapper (over split
/// points) and the reducer (over local centers).
std::vector<Vec> canopy_centers(std::span<const Vec> points, double t1, double t2);

/// Run the one-job MapReduce canopy driver and assign every point to its
/// nearest canopy.
ClusteringRun canopy_cluster(const Dataset& data, const CanopyConfig& config);

}  // namespace vhadoop::ml

#include "ml/canopy.hpp"

#include <memory>
#include <stdexcept>

namespace vhadoop::ml {

std::vector<Vec> canopy_centers(std::span<const Vec> points, double t1, double t2) {
  if (t1 < t2) throw std::invalid_argument("canopy: T1 must be >= T2");
  std::vector<Vec> centers;
  const double t2_sq = t2 * t2;
  for (const Vec& p : points) {
    bool strongly_bound = false;
    for (const Vec& c : centers) {
      if (squared_euclidean(p, c) <= t2_sq) {
        strongly_bound = true;
        break;
      }
    }
    if (!strongly_bound) centers.push_back(p);
  }
  return centers;
}

namespace {

class CanopyMapper : public mapreduce::Mapper {
 public:
  CanopyMapper(double t1, double t2) : t1_(t1), t2_(t2) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    points_.push_back(mapreduce::decode_vec(value));
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (const Vec& c : canopy_centers(points_, t1_, t2_)) {
      ctx.emit("centroid", mapreduce::encode_vec(c));
    }
  }

 private:
  double t1_, t2_;
  std::vector<Vec> points_;
};

class CanopyReducer : public mapreduce::Reducer {
 public:
  CanopyReducer(double t1, double t2) : t1_(t1), t2_(t2) {}

  void reduce(std::string_view, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::vector<Vec> local;
    local.reserve(values.size());
    for (auto v : values) local.push_back(mapreduce::decode_vec(v));
    int i = 0;
    for (const Vec& c : canopy_centers(local, t1_, t2_)) {
      ctx.emit("canopy-" + std::to_string(i++), mapreduce::encode_vec(c));
    }
  }

 private:
  double t1_, t2_;
};

}  // namespace

ClusteringRun canopy_cluster(const Dataset& data, const CanopyConfig& config) {
  mapreduce::JobSpec spec;
  spec.config.name = "canopy";
  spec.config.num_reduces = 1;  // all local centers meet in one reducer
  spec.config.cost.map_cpu_per_record = 1.2e-5;  // distance scans
  spec.config.cost.map_cpu_per_byte = 2e-8;
  spec.mapper = [&config] { return std::make_unique<CanopyMapper>(config.t1, config.t2); };
  spec.reducer = [&config] { return std::make_unique<CanopyReducer>(config.t1, config.t2); };

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);
  ClusteringRun run;
  run.algorithm = "canopy";
  run.jobs.push_back(runner.run(spec, records, config.base.num_splits));
  run.iterations = 1;

  for (const mapreduce::KV& kv : run.jobs[0].output) {
    run.centers.push_back(mapreduce::decode_vec(kv.value));
  }
  run.iteration_centers.push_back(run.centers);
  run.assignments.reserve(data.size());
  for (const Vec& p : data.points) {
    run.assignments.push_back(nearest_center(p, run.centers));
  }
  return run;
}

}  // namespace vhadoop::ml

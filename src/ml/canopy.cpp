#include "ml/canopy.hpp"

#include <memory>
#include <stdexcept>

namespace vhadoop::ml {

std::vector<Vec> canopy_centers(std::span<const Vec> points, double t1, double t2) {
  if (t1 < t2) throw std::invalid_argument("canopy: T1 must be >= T2");
  std::vector<Vec> centers;
  const double t2_sq = t2 * t2;
  for (const Vec& p : points) {
    bool strongly_bound = false;
    for (const Vec& c : centers) {
      if (squared_euclidean(p, c) <= t2_sq) {
        strongly_bound = true;
        break;
      }
    }
    if (!strongly_bound) centers.push_back(p);
  }
  return centers;
}

namespace {

/// Canopy selection over row-major flat points: returns the indices of the
/// rows kept as centers. Same scan order and distance test as
/// `canopy_centers`, but every candidate-vs-center distance walks one
/// contiguous buffer.
std::vector<std::size_t> canopy_select_flat(const std::vector<double>& pts, std::size_t dim,
                                            std::size_t n, double t1, double t2) {
  if (t1 < t2) throw std::invalid_argument("canopy: T1 must be >= T2");
  std::vector<std::size_t> centers;
  const double t2_sq = t2 * t2;
  for (std::size_t r = 0; r < n; ++r) {
    const std::span<const double> p{pts.data() + r * dim, dim};
    bool strongly_bound = false;
    for (std::size_t c : centers) {
      if (squared_euclidean(p, {pts.data() + c * dim, dim}) <= t2_sq) {
        strongly_bound = true;
        break;
      }
    }
    if (!strongly_bound) centers.push_back(r);
  }
  return centers;
}

class CanopyMapper : public mapreduce::Mapper {
 public:
  CanopyMapper(double t1, double t2) : t1_(t1), t2_(t2) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    const auto p = mapreduce::decode_vec_view(value, scratch_);
    if (n_ == 0) dim_ = p.size();
    ++n_;
    points_.insert(points_.end(), p.begin(), p.end());
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (std::size_t r : canopy_select_flat(points_, dim_, n_, t1_, t2_)) {
      ctx.emit("centroid", mapreduce::encode_vec({points_.data() + r * dim_, dim_}));
    }
  }

 private:
  double t1_, t2_;
  std::vector<double> points_;  // row-major buffered split points
  std::size_t dim_ = 0;
  std::size_t n_ = 0;
  std::vector<double> scratch_;
};

class CanopyReducer : public mapreduce::Reducer {
 public:
  CanopyReducer(double t1, double t2) : t1_(t1), t2_(t2) {}

  void reduce(std::string_view, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::vector<double> local;
    std::size_t dim = 0, n = 0;
    for (auto v : values) {
      const auto c = mapreduce::decode_vec_view(v, scratch_);
      if (n == 0) dim = c.size();
      ++n;
      local.insert(local.end(), c.begin(), c.end());
    }
    int i = 0;
    for (std::size_t r : canopy_select_flat(local, dim, n, t1_, t2_)) {
      ctx.emit("canopy-" + std::to_string(i++), mapreduce::encode_vec({local.data() + r * dim, dim}));
    }
  }

 private:
  double t1_, t2_;
  std::vector<double> scratch_;
};

}  // namespace

ClusteringRun canopy_cluster(const Dataset& data, const CanopyConfig& config) {
  mapreduce::JobSpec spec;
  spec.config.name = "canopy";
  spec.config.num_reduces = 1;  // all local centers meet in one reducer
  spec.config.cost.map_cpu_per_record = 1.2e-5;  // distance scans
  spec.config.cost.map_cpu_per_byte = 2e-8;
  spec.mapper = [&config] { return std::make_unique<CanopyMapper>(config.t1, config.t2); };
  spec.reducer = [&config] { return std::make_unique<CanopyReducer>(config.t1, config.t2); };

  mapreduce::LocalJobRunner runner(config.base.threads);
  const auto records = to_records(data);
  ClusteringRun run;
  run.algorithm = "canopy";
  run.jobs.push_back(runner.run(spec, records, config.base.num_splits));
  run.iterations = 1;

  for (const mapreduce::KV& kv : run.jobs[0].output) {
    run.centers.push_back(mapreduce::decode_vec(kv.value));
  }
  run.iteration_centers.push_back(run.centers);
  run.assignments = assign_nearest(data, run.centers, config.base.threads);
  return run;
}

}  // namespace vhadoop::ml

#include "ml/dataset.hpp"

#include "sim/rng.hpp"

namespace vhadoop::ml {

Dataset synthetic_control(int per_class, int length, std::uint64_t seed) {
  sim::Rng rng(seed);
  Dataset data;
  data.points.reserve(static_cast<std::size_t>(per_class) * 6);
  data.labels.reserve(data.points.capacity());

  // Alcock & Manolopoulos generator constants: m = 30, r(t) ~ U(-2, 2),
  // class-specific terms with parameters drawn per-series.
  const double m = 30.0;
  for (int cls = 0; cls < 6; ++cls) {
    for (int s = 0; s < per_class; ++s) {
      Vec y(static_cast<std::size_t>(length));
      const double a = rng.uniform(10.0, 15.0);       // cyclic amplitude
      const double T = rng.uniform(10.0, 15.0);       // cyclic period
      const double g = rng.uniform(0.2, 0.5);         // trend gradient
      const double x = rng.uniform(7.5, 20.0);        // shift magnitude
      const double t3 = rng.uniform(length / 3.0, 2.0 * length / 3.0);  // shift onset
      for (int t = 0; t < length; ++t) {
        const double r = rng.uniform(-2.0, 2.0);
        double v = m + r;
        switch (cls) {
          case 0: break;  // normal
          case 1: v += a * std::sin(2.0 * 3.141592653589793 * t / T); break;
          case 2: v += g * t; break;
          case 3: v -= g * t; break;
          case 4: v += (t >= t3 ? x : 0.0); break;
          case 5: v -= (t >= t3 ? x : 0.0); break;
          default: break;
        }
        y[static_cast<std::size_t>(t)] = v;
      }
      data.points.push_back(std::move(y));
      data.labels.push_back(cls);
    }
  }
  return data;
}

Dataset display_clustering_samples(int total, std::uint64_t seed) {
  sim::Rng rng(seed);
  Dataset data;
  struct Blob {
    double cx, cy, sd;
    double share;
  };
  const Blob blobs[] = {{1.0, 1.0, 3.0, 0.4}, {1.0, 0.0, 0.5, 0.3}, {0.0, 2.0, 0.1, 0.3}};
  int label = 0;
  int produced = 0;
  for (const Blob& b : blobs) {
    const int n = (label == 2) ? total - produced
                               : static_cast<int>(b.share * total);
    for (int i = 0; i < n; ++i) {
      data.points.push_back({rng.normal(b.cx, b.sd), rng.normal(b.cy, b.sd)});
      data.labels.push_back(label);
    }
    produced += n;
    ++label;
  }
  return data;
}

std::vector<mapreduce::KV> to_records(const Dataset& data) {
  std::vector<mapreduce::KV> records;
  records.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    records.push_back({mapreduce::encode_i64(static_cast<std::int64_t>(i)),
                       mapreduce::encode_vec(data.points[i])});
  }
  return records;
}

Vec point_of(const mapreduce::KV& record) { return mapreduce::decode_vec(record.value); }

}  // namespace vhadoop::ml

#include "ml/meanshift.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

namespace vhadoop::ml {

namespace {

struct Canopy {
  double weight = 1.0;
  Vec center;
};

std::string encode_canopy(double weight, std::span<const double> center) {
  std::string out((center.size() + 1) * sizeof(double), '\0');
  std::memcpy(out.data(), &weight, sizeof(double));
  if (!center.empty()) {
    std::memcpy(out.data() + sizeof(double), center.data(), center.size() * sizeof(double));
  }
  return out;
}

Canopy decode_canopy(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  Canopy c;
  c.weight = payload.empty() ? 0.0 : payload[0];
  c.center.assign(payload.begin() + (payload.empty() ? 0 : 1), payload.end());
  return c;
}

/// Canopy population in row-major flat storage: the O(n^2) neighbourhood
/// scans of shift_and_merge walk two contiguous buffers.
struct FlatCanopies {
  std::vector<double> weights;
  std::vector<double> centers;  // row-major size() x dim
  std::size_t dim = 0;

  std::size_t size() const { return weights.size(); }
  std::span<const double> center(std::size_t i) const { return {centers.data() + i * dim, dim}; }
  void push(double w, std::span<const double> c) {
    weights.push_back(w);
    centers.insert(centers.end(), c.begin(), c.end());
  }
};

/// Shift every canopy toward the weighted mean of its T1-neighbourhood,
/// then greedily merge canopies within T2. The kernel both the mapper
/// (over its split) and the reducer (over everything) apply. Arithmetic
/// order matches the original Vec-of-Canopy implementation exactly.
FlatCanopies shift_and_merge(const FlatCanopies& in, double t1, double t2) {
  const double t1_sq = t1 * t1, t2_sq = t2 * t2;
  const std::size_t dim = in.dim;
  std::vector<double> shifted(in.size() * dim, 0.0);
  Vec sum(dim);
  for (std::size_t i = 0; i < in.size(); ++i) {
    std::fill(sum.begin(), sum.end(), 0.0);
    double weight = 0.0;
    for (std::size_t o = 0; o < in.size(); ++o) {
      if (squared_euclidean(in.center(i), in.center(o)) <= t1_sq) {
        const auto oc = in.center(o);
        for (std::size_t d = 0; d < dim; ++d) sum[d] += oc[d] * in.weights[o];
        weight += in.weights[o];
      }
    }
    if (weight > 0.0) {
      for (std::size_t d = 0; d < dim; ++d) sum[d] *= 1.0 / weight;
    }
    std::copy(sum.begin(), sum.end(), shifted.begin() + static_cast<std::ptrdiff_t>(i * dim));
  }
  FlatCanopies merged;
  merged.dim = dim;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::span<const double> c{shifted.data() + i * dim, dim};
    const double cw = in.weights[i];
    bool absorbed = false;
    for (std::size_t m = 0; m < merged.size(); ++m) {
      if (squared_euclidean(c, merged.center(m)) <= t2_sq) {
        // Weighted average of the two centers.
        const double w = merged.weights[m] + cw;
        double* mc = merged.centers.data() + m * dim;
        for (std::size_t d = 0; d < dim; ++d) {
          mc[d] = (mc[d] * merged.weights[m] + c[d] * cw) / w;
        }
        merged.weights[m] = w;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) merged.push(cw, c);
  }
  return merged;
}

class MeanShiftMapper : public mapreduce::Mapper {
 public:
  MeanShiftMapper(double t1, double t2) : t1_(t1), t2_(t2) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    const auto payload = mapreduce::decode_vec_view(value, scratch_);
    if (payload.empty()) return;  // no weight, no center — nothing to shift
    if (canopies_.size() == 0) canopies_.dim = payload.size() - 1;
    canopies_.push(payload[0], payload.subspan(1));
  }

  void cleanup(mapreduce::Context& ctx) override {
    const FlatCanopies out = shift_and_merge(canopies_, t1_, t2_);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ctx.emit("canopy", encode_canopy(out.weights[i], out.center(i)));
    }
  }

 private:
  double t1_, t2_;
  FlatCanopies canopies_;
  std::vector<double> scratch_;
};

class MeanShiftReducer : public mapreduce::Reducer {
 public:
  MeanShiftReducer(double t1, double t2) : t1_(t1), t2_(t2) {}

  void reduce(std::string_view, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    FlatCanopies all;
    for (auto v : values) {
      const auto payload = mapreduce::decode_vec_view(v, scratch_);
      if (payload.empty()) continue;
      if (all.size() == 0) all.dim = payload.size() - 1;
      all.push(payload[0], payload.subspan(1));
    }
    const FlatCanopies out = shift_and_merge(all, t1_, t2_);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ctx.emit("c" + std::to_string(i), encode_canopy(out.weights[i], out.center(i)));
    }
  }

 private:
  double t1_, t2_;
  std::vector<double> scratch_;
};

}  // namespace

ClusteringRun meanshift_cluster(const Dataset& data, const MeanShiftConfig& config) {
  // Every point starts as a unit-weight canopy.
  std::vector<mapreduce::KV> state;
  state.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    state.push_back({mapreduce::encode_i64(static_cast<std::int64_t>(i)),
                     encode_canopy(1.0, data.points[i])});
  }

  mapreduce::LocalJobRunner runner(config.base.threads);
  ClusteringRun run;
  run.algorithm = "meanshift";
  std::vector<Vec> prev_centers;

  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "meanshift-iter" + std::to_string(iter);
    spec.config.num_reduces = 1;
    spec.config.cost.map_cpu_per_record = 2e-5;  // O(n^2/splits) neighbourhood scans
    spec.config.cost.map_cpu_per_byte = 2e-8;
    const double t1 = config.t1, t2 = config.t2;
    spec.mapper = [t1, t2] { return std::make_unique<MeanShiftMapper>(t1, t2); };
    spec.reducer = [t1, t2] { return std::make_unique<MeanShiftReducer>(t1, t2); };

    auto result = runner.run(spec, state, config.base.num_splits);
    ++run.iterations;

    std::vector<Vec> centers;
    state.clear();
    for (const mapreduce::KV& kv : result.output) {
      Canopy c = decode_canopy(kv.value);
      centers.push_back(c.center);
      state.push_back({kv.key, kv.value});
    }
    run.jobs.push_back(std::move(result));
    run.iteration_centers.push_back(centers);

    // Converged when the canopy population is stable and nothing moved
    // farther than the delta.
    bool converged = !prev_centers.empty() && centers.size() == prev_centers.size();
    if (converged) {
      for (const Vec& c : centers) {
        double best = std::numeric_limits<double>::infinity();
        for (const Vec& p : prev_centers) best = std::min(best, euclidean(c, p));
        if (best > config.base.convergence_delta) {
          converged = false;
          break;
        }
      }
    }
    prev_centers = std::move(centers);
    if (converged) break;
  }

  run.centers = prev_centers;
  run.assignments = assign_nearest(data, run.centers, config.base.threads);
  return run;
}

}  // namespace vhadoop::ml

#include "ml/meanshift.hpp"

#include <memory>

namespace vhadoop::ml {

namespace {

struct Canopy {
  double weight = 1.0;
  Vec center;
};

std::string encode_canopy(const Canopy& c) {
  Vec payload;
  payload.reserve(c.center.size() + 1);
  payload.push_back(c.weight);
  payload.insert(payload.end(), c.center.begin(), c.center.end());
  return mapreduce::encode_vec(payload);
}

Canopy decode_canopy(std::string_view s) {
  Vec payload = mapreduce::decode_vec(s);
  Canopy c;
  c.weight = payload.empty() ? 0.0 : payload[0];
  c.center.assign(payload.begin() + (payload.empty() ? 0 : 1), payload.end());
  return c;
}

/// Shift every canopy toward the weighted mean of its T1-neighbourhood,
/// then greedily merge canopies within T2. The kernel both the mapper
/// (over its split) and the reducer (over everything) apply.
std::vector<Canopy> shift_and_merge(const std::vector<Canopy>& in, double t1, double t2) {
  const double t1_sq = t1 * t1, t2_sq = t2 * t2;
  std::vector<Canopy> shifted;
  shifted.reserve(in.size());
  for (const Canopy& c : in) {
    Vec sum;
    double weight = 0.0;
    for (const Canopy& o : in) {
      if (squared_euclidean(c.center, o.center) <= t1_sq) {
        Vec contrib = scaled(o.center, o.weight);
        add_in_place(sum, contrib);
        weight += o.weight;
      }
    }
    shifted.push_back({c.weight, mean_of(std::move(sum), weight)});
  }
  std::vector<Canopy> merged;
  for (const Canopy& c : shifted) {
    bool absorbed = false;
    for (Canopy& m : merged) {
      if (squared_euclidean(c.center, m.center) <= t2_sq) {
        // Weighted average of the two centers.
        const double w = m.weight + c.weight;
        for (std::size_t i = 0; i < m.center.size(); ++i) {
          m.center[i] = (m.center[i] * m.weight + c.center[i] * c.weight) / w;
        }
        m.weight = w;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) merged.push_back(c);
  }
  return merged;
}

class MeanShiftMapper : public mapreduce::Mapper {
 public:
  MeanShiftMapper(double t1, double t2) : t1_(t1), t2_(t2) {}

  void map(std::string_view, std::string_view value, mapreduce::Context&) override {
    canopies_.push_back(decode_canopy(value));
  }

  void cleanup(mapreduce::Context& ctx) override {
    for (const Canopy& c : shift_and_merge(canopies_, t1_, t2_)) {
      ctx.emit("canopy", encode_canopy(c));
    }
  }

 private:
  double t1_, t2_;
  std::vector<Canopy> canopies_;
};

class MeanShiftReducer : public mapreduce::Reducer {
 public:
  MeanShiftReducer(double t1, double t2) : t1_(t1), t2_(t2) {}

  void reduce(std::string_view, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::vector<Canopy> all;
    all.reserve(values.size());
    for (auto v : values) all.push_back(decode_canopy(v));
    int i = 0;
    for (const Canopy& c : shift_and_merge(all, t1_, t2_)) {
      ctx.emit("c" + std::to_string(i++), encode_canopy(c));
    }
  }

 private:
  double t1_, t2_;
};

}  // namespace

ClusteringRun meanshift_cluster(const Dataset& data, const MeanShiftConfig& config) {
  // Every point starts as a unit-weight canopy.
  std::vector<mapreduce::KV> state;
  state.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    state.push_back({mapreduce::encode_i64(static_cast<std::int64_t>(i)),
                     encode_canopy({1.0, data.points[i]})});
  }

  mapreduce::LocalJobRunner runner(config.base.threads);
  ClusteringRun run;
  run.algorithm = "meanshift";
  std::vector<Vec> prev_centers;

  for (int iter = 0; iter < config.base.max_iterations; ++iter) {
    mapreduce::JobSpec spec;
    spec.config.name = "meanshift-iter" + std::to_string(iter);
    spec.config.num_reduces = 1;
    spec.config.cost.map_cpu_per_record = 2e-5;  // O(n^2/splits) neighbourhood scans
    spec.config.cost.map_cpu_per_byte = 2e-8;
    const double t1 = config.t1, t2 = config.t2;
    spec.mapper = [t1, t2] { return std::make_unique<MeanShiftMapper>(t1, t2); };
    spec.reducer = [t1, t2] { return std::make_unique<MeanShiftReducer>(t1, t2); };

    auto result = runner.run(spec, state, config.base.num_splits);
    ++run.iterations;

    std::vector<Vec> centers;
    state.clear();
    for (const mapreduce::KV& kv : result.output) {
      Canopy c = decode_canopy(kv.value);
      centers.push_back(c.center);
      state.push_back({kv.key, kv.value});
    }
    run.jobs.push_back(std::move(result));
    run.iteration_centers.push_back(centers);

    // Converged when the canopy population is stable and nothing moved
    // farther than the delta.
    bool converged = !prev_centers.empty() && centers.size() == prev_centers.size();
    if (converged) {
      for (const Vec& c : centers) {
        double best = std::numeric_limits<double>::infinity();
        for (const Vec& p : prev_centers) best = std::min(best, euclidean(c, p));
        if (best > config.base.convergence_delta) {
          converged = false;
          break;
        }
      }
    }
    prev_centers = std::move(centers);
    if (converged) break;
  }

  run.centers = prev_centers;
  run.assignments.reserve(data.size());
  for (const Vec& p : data.points) run.assignments.push_back(nearest_center(p, run.centers));
  return run;
}

}  // namespace vhadoop::ml

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mapreduce/job.hpp"

namespace vhadoop::ml {

/// Item-based collaborative filtering (the *recommendations* category of
/// the paper's ML library; Mahout's item-similarity RecommenderJob,
/// simplified to the classic two-job pipeline):
///   job 1 — co-occurrence: each user's preference list yields item pairs;
///           reducers aggregate the co-occurrence matrix rows;
///   job 2 — recommendation: each user's vector is multiplied against the
///           matrix; top-N unseen items are emitted.
struct Rating {
  std::int64_t user = 0;
  std::int64_t item = 0;
  double value = 1.0;
};

struct RecommenderConfig {
  int top_n = 3;
  int num_splits = 4;
  int num_reduces = 2;
  unsigned threads = 0;
};

struct RecommenderRun {
  /// user -> recommended items, best first.
  std::map<std::int64_t, std::vector<std::int64_t>> recommendations;
  /// Sparse co-occurrence matrix: item -> (item -> count).
  std::map<std::int64_t, std::map<std::int64_t, double>> cooccurrence;
  std::vector<mapreduce::JobResult> jobs;  ///< [0] co-occurrence, [1] recommend
};

RecommenderRun recommend_items(const std::vector<Rating>& ratings,
                               const RecommenderConfig& config = {});

/// Synthetic ratings with planted block structure: users of group g rate
/// items of group g highly, so in-group unseen items are the right answer.
std::vector<Rating> synthetic_ratings(int groups, int users_per_group, int items_per_group,
                                      double rated_fraction, std::uint64_t seed = 17);

}  // namespace vhadoop::ml

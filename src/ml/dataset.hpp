#pragma once

#include <cstdint>
#include <vector>

#include "mapreduce/kv.hpp"
#include "ml/vector.hpp"

namespace vhadoop::ml {

/// A labeled point set (labels only used by tests/visualization).
struct Dataset {
  std::vector<Vec> points;
  std::vector<int> labels;

  std::size_t size() const { return points.size(); }
  std::size_t dim() const { return points.empty() ? 0 : points[0].size(); }
};

/// Synthetic Control Chart Time Series (Alcock & Manolopoulos, 1999) — the
/// exact generator behind the UCI dataset the paper clusters: 6 classes x
/// `per_class` series of length 60. Classes: 0 normal, 1 cyclic,
/// 2 increasing trend, 3 decreasing trend, 4 upward shift, 5 downward shift.
Dataset synthetic_control(int per_class = 100, int length = 60, std::uint64_t seed = 1999);

/// The Mahout DisplayClustering sample set the paper visualizes: `total`
/// points from three symmetric bivariate normals —
/// N([1,1], sd 3), N([1,0], sd 0.5), N([0,2], sd 0.1).
Dataset display_clustering_samples(int total = 1000, std::uint64_t seed = 2012);

/// Serialize points as (row-id, packed doubles) records — the form every
/// clustering job consumes.
std::vector<mapreduce::KV> to_records(const Dataset& data);

/// Decode one record back to a point.
Vec point_of(const mapreduce::KV& record);

}  // namespace vhadoop::ml

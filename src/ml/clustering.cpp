#include "ml/clustering.hpp"

#include <limits>
#include <stdexcept>

#include "mapreduce/thread_pool.hpp"

namespace vhadoop::ml {

int nearest_center(const Vec& point, const std::vector<Vec>& centers) {
  if (centers.empty()) throw std::invalid_argument("nearest_center: no centers");
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const double d = squared_euclidean(point, centers[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

CenterMatrix::CenterMatrix(const std::vector<Vec>& centers)
    : rows_(centers.size()), cols_(centers.empty() ? 0 : centers[0].size()) {
  data_.reserve(rows_ * cols_);
  for (const Vec& c : centers) {
    if (c.size() != cols_) throw std::invalid_argument("CenterMatrix: ragged centers");
    data_.insert(data_.end(), c.begin(), c.end());
  }
}

int nearest_center(std::span<const double> point, const CenterMatrix& centers) {
  if (centers.rows() == 0) throw std::invalid_argument("nearest_center: no centers");
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.rows(); ++c) {
    const double d = squared_euclidean(point, centers.row(c));
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> assign_nearest(const Dataset& data, const std::vector<Vec>& centers,
                                unsigned threads) {
  const CenterMatrix flat(centers);
  std::vector<int> assignments(data.size());
  mapreduce::parallel_for(data.size(), threads == 0 ? mapreduce::default_threads() : threads,
                          [&](std::size_t i) {
                            assignments[i] = nearest_center(data.points[i], flat);
                          });
  return assignments;
}

double total_cost(const Dataset& data, const std::vector<Vec>& centers) {
  double cost = 0.0;
  for (const Vec& p : data.points) {
    cost += squared_euclidean(p, centers[static_cast<std::size_t>(nearest_center(p, centers))]);
  }
  return cost;
}

}  // namespace vhadoop::ml

#include "ml/clustering.hpp"

#include <limits>
#include <stdexcept>

namespace vhadoop::ml {

int nearest_center(const Vec& point, const std::vector<Vec>& centers) {
  if (centers.empty()) throw std::invalid_argument("nearest_center: no centers");
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const double d = squared_euclidean(point, centers[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double total_cost(const Dataset& data, const std::vector<Vec>& centers) {
  double cost = 0.0;
  for (const Vec& p : data.points) {
    cost += squared_euclidean(p, centers[static_cast<std::size_t>(nearest_center(p, centers))]);
  }
  return cost;
}

}  // namespace vhadoop::ml

#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace vhadoop::ml {

/// Dense feature vector. The clustering algorithms are dimension-agnostic;
/// the paper's datasets are 60-d (control charts) and 2-d (display).
using Vec = std::vector<double>;

inline void check_same_dim(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dimension mismatch");
}

inline double squared_euclidean(std::span<const double> a, std::span<const double> b) {
  check_same_dim(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_euclidean(a, b));
}

inline double manhattan(std::span<const double> a, std::span<const double> b) {
  check_same_dim(a, b);
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

inline double cosine_distance(std::span<const double> a, std::span<const double> b) {
  check_same_dim(a, b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  // vlint: allow(no-exact-float-compare) audited PR 8: zero-norm guard before division
  if (na == 0.0 || nb == 0.0) return 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

inline void add_in_place(Vec& acc, std::span<const double> x) {
  if (acc.empty()) acc.assign(x.begin(), x.end());
  else {
    check_same_dim(acc, x);
    for (std::size_t i = 0; i < x.size(); ++i) acc[i] += x[i];
  }
}

inline void scale_in_place(Vec& v, double s) {
  for (double& x : v) x *= s;
}

inline Vec scaled(std::span<const double> v, double s) {
  Vec out(v.begin(), v.end());
  scale_in_place(out, s);
  return out;
}

/// Mean of per-cluster accumulated sum and count.
inline Vec mean_of(Vec sum, double count) {
  if (count > 0.0) scale_in_place(sum, 1.0 / count);
  return sum;
}

}  // namespace vhadoop::ml

#pragma once

#include "ml/clustering.hpp"

namespace vhadoop::ml {

/// Fuzzy k-means (paper Sec. IV-A, Mahout FuzzyKMeansDriver): soft
/// clustering where point i belongs to cluster j with membership
/// u_ij = 1 / sum_k (d_ij / d_ik)^(2/(m-1)). Each iteration's mapper emits
/// membership-weighted partial sums to *every* cluster; the reducer forms
/// the new centers as weighted means.
struct FuzzyKMeansConfig {
  int k = 6;
  /// Fuzziness exponent m > 1 (Mahout default 2.0; m -> 1 approaches hard
  /// k-means).
  double m = 2.0;
  ClusteringConfig base;
};

/// Membership row of `point` against `centers` (sums to 1).
Vec memberships(const Vec& point, const std::vector<Vec>& centers, double m);

ClusteringRun fuzzy_kmeans_cluster(const Dataset& data, const FuzzyKMeansConfig& config,
                                   std::vector<Vec> initial_centers = {});

}  // namespace vhadoop::ml

#pragma once

#include <functional>
#include <vector>

#include "virt/cloud.hpp"

namespace vhadoop::virt {

/// Whole-cluster migration outcome: per-VM records plus the aggregates the
/// paper's Table II reports.
struct ClusterMigrationResult {
  std::vector<MigrationResult> per_vm;
  /// Wall-clock from the first pre-copy byte to the last VM resuming.
  double overall_migration_time = 0.0;
  /// Total service disruption: sum of per-VM downtimes (each VM's clients
  /// observe their own gap; Hadoop masks them via re-execution).
  double overall_downtime = 0.0;
};

/// Extension of the authors' Virt-LM benchmark from single-VM to
/// virtual-cluster migration: migrates every VM of a cluster from its
/// current host to `dst`, at most `concurrency` streams in flight (the Xen
/// toolstack serializes heavily; 2 concurrent sends is typical), recording
/// per-VM migration time and downtime and the cluster-level aggregates.
class ClusterMigration {
 public:
  ClusterMigration(Cloud& cloud, int concurrency = 2) : cloud_(cloud), concurrency_(concurrency) {}

  /// Kick off the migration. `dirty_of` supplies each VM's dirty-page
  /// behaviour (e.g. heavier for VMs running map tasks). `on_done` fires
  /// once every VM has resumed on `dst`.
  void run(const std::vector<VmId>& vms, HostId dst,
           std::function<DirtyModel(VmId)> dirty_of,
           std::function<void(const ClusterMigrationResult&)> on_done);

 private:
  void launch_next();

  Cloud& cloud_;
  int concurrency_;
  std::vector<VmId> queue_;
  std::size_t next_ = 0;
  int in_flight_ = 0;
  HostId dst_ = 0;
  double started_at_ = 0.0;
  std::function<DirtyModel(VmId)> dirty_of_;
  std::function<void(const ClusterMigrationResult&)> on_done_;
  ClusterMigrationResult result_;
};

}  // namespace vhadoop::virt

#pragma once

#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace vhadoop::virt {

/// Virtualization-layer parameters. Defaults model the paper's testbed:
/// Dell T710 (2x quad-core Xeon E5620 @ 2.4 GHz, 32 GB), Xen 4.x with all
/// VM images on a shared NFS server, GbE interconnect.
struct VirtConfig {
  /// Dell T710: 2x quad-core Xeon E5620 *with hyper-threading* = 16
  /// hardware threads, so the paper's 16 single-VCPU guests on one host
  /// are not CPU-oversubscribed (each thread is modeled as a full core —
  /// a simplification noted in DESIGN.md).
  int cores_per_host = 16;
  /// Normalized compute capacity of one core (core-seconds per second).
  double core_capacity = 1.0;
  double host_memory_mb = 32 * 1024;

  /// NFS server: every virtual block device is a file on this server, so
  /// *all* VM disk I/O becomes network traffic to the NFS node plus load on
  /// its spindle — the bottleneck the paper identifies.
  double nfs_disk_bw = sim::mbyte_per_s(120);

  /// Per-VM virtual disk throughput ceiling (blkfront/blkback path).
  double vdisk_bw = sim::mbyte_per_s(90);

  /// Guest page cache: re-reads of recently written/read blocks are served
  /// from guest RAM instead of NFS. Roughly memory_mb minus the JVM heap.
  double page_cache_mb = 300.0;
  /// In-memory copy bandwidth for cache hits.
  double cache_read_bw = sim::gbit_per_s(20.0);

  /// Time to boot a VM once its image header/config blocks have been read
  /// from NFS (kernel boot + daemon start).
  double vm_boot_seconds = 12.0;
  /// Image bytes fetched from NFS during boot (copy-on-write images: only
  /// the touched blocks move).
  double vm_boot_io_bytes = 160 * sim::kMiB;

  // --- pre-copy live migration (Clark et al., NSDI'05) ---
  int max_precopy_rounds = 30;
  /// Max-min weight of the migration stream relative to guest flows.
  /// 1.0 = best effort; larger values approximate the bandwidth
  /// *reservation* of the authors' prior work (Ye et al., CLOUD'11,
  /// ref [18]): under contention the stream holds weight/(weight+n) of
  /// the NIC instead of 1/(n+1).
  double migration_stream_weight = 1.0;
  /// Stop-and-copy once the dirty set is below this.
  double stop_copy_threshold_bytes = 0.25 * sim::kMiB;
  /// Fixed downtime component: pause, final device state, ARP re-binding.
  double downtime_fixed_seconds = 0.055;
  /// Extra resume cost per byte of writable working set (shadow page-table
  /// rebuild and post-resume faulting; grows with how hot the guest is).
  double resume_cost_per_dirty_byte = 5.5e-8;
  /// Guest page size granularity for the dirty set.
  double page_bytes = 4096.0;
};

struct VmSpec {
  int vcpus = 1;
  double memory_mb = 1024.0;
};

enum class VmState { Stopped, Booting, Running, Migrating, Crashed };

using HostId = std::size_t;
using VmId = std::size_t;

/// Memory write behaviour of a guest during migration (Clark et al.'s
/// dirty-page model): a hot Writable Working Set that is re-dirtied every
/// round no matter how fast the link is, plus a slower background rate.
struct DirtyModel {
  /// Background page-dirty rate, bytes/second.
  double rate = 0.0;
  /// Writable working set: bytes rewritten continuously (pre-copy cannot
  /// converge below this).
  double wws_bytes = 0.0;

  static DirtyModel idle() { return {0.1 * sim::kMiB, 0.125 * sim::kMiB}; }
  /// A Hadoop worker running Wordcount: JVM heap churn + map output buffers.
  static DirtyModel wordcount() { return {6 * sim::kMiB, 16 * sim::kMiB}; }
};

/// Result of one VM live migration (what the Virt-LM benchmark records).
struct MigrationResult {
  VmId vm = 0;
  double migration_time = 0.0;  ///< first pre-copy byte to resume, seconds
  double downtime = 0.0;        ///< stop-and-copy unavailability, seconds
  int rounds = 0;               ///< pre-copy iterations
  double transferred_bytes = 0.0;
};

/// The Virtualization Module: physical hosts, the NFS image server, guest
/// VMs, and the primitive operations every higher layer is built from —
/// virtual CPU burn, virtual disk I/O (NFS-backed), VM-to-VM transfers and
/// pre-copy live migration.
class Cloud {
 public:
  /// Trace lane for migration spans (task slots occupy the low tids).
  static constexpr int kMigrationTid = 1000;

  Cloud(sim::Engine& engine, sim::FluidModel& model, net::Fabric& fabric, VirtConfig config);

  // --- topology -----------------------------------------------------------
  HostId add_host(const std::string& name);
  std::size_t host_count() const { return hosts_.size(); }
  const std::string& host_name(HostId h) const { return hosts_[h].name; }

  /// Rack identity, delegated to the fabric topology. A single-switch
  /// fabric is one rack; rack-aware behaviour upstream (HDFS placement
  /// tiers, scheduler rack locality, per-rack filers) keys off
  /// rack_count() > 1.
  int rack_count() const { return fabric_.rack_count(); }
  int rack_of_host(HostId h) const { return fabric_.rack_of(hosts_[h].node); }
  int rack_of_vm(VmId v) const {
    return vms_[v].host == kOnNfs ? fabric_.rack_of(nfs_nodes_.front())
                                  : rack_of_host(vms_[v].host);
  }

  // --- VM lifecycle -------------------------------------------------------
  /// Create a VM on `host` (throws if memory would be oversubscribed).
  VmId create_vm(const std::string& name, HostId host, VmSpec spec);

  /// Kill a VM abruptly (failure injection). All of its in-flight
  /// activities stall permanently (their completions never fire, as with a
  /// real crash); registered crash listeners are notified so upper layers
  /// (HDFS re-replication, JobTracker re-execution) can react.
  void crash_vm(VmId vm);

  /// Hang a VM silently: it stops making progress but nothing is notified
  /// (models a wedged guest the cluster has not detected — the case
  /// speculative execution exists for).
  void hang_vm(VmId vm);
  /// Subscribe to crash notifications.
  void on_crash(std::function<void(VmId)> listener) {
    crash_listeners_.push_back(std::move(listener));
  }
  bool alive(VmId vm) const {
    const VmState s = vms_[vm].state;
    return s == VmState::Running || s == VmState::Migrating || s == VmState::Booting;
  }
  /// Alive *and* able to execute (a silently hung guest is alive on paper
  /// but cannot answer a heartbeat).
  bool responsive(VmId vm) const;
  /// Boot asynchronously: fetches image blocks from NFS (contending with
  /// every other booting VM), then waits out the OS boot time.
  void boot_vm(VmId vm, std::function<void()> on_ready);
  void destroy_vm(VmId vm);

  VmState state(VmId vm) const { return vms_[vm].state; }
  HostId host_of(VmId vm) const { return vms_[vm].host; }
  const std::string& vm_name(VmId vm) const { return vms_[vm].name; }
  const VmSpec& spec(VmId vm) const { return vms_[vm].spec; }
  std::size_t vm_count() const { return vms_.size(); }

  // --- primitive operations -----------------------------------------------
  /// Burn `core_seconds` of guest CPU. Limited by the VM's VCPU allotment
  /// and by fair sharing of the host's physical cores.
  void run_compute(VmId vm, double core_seconds, std::function<void()> on_complete,
                   double weight = 1.0);

  /// Virtual block-device read/write: crosses the host NIC to the NFS
  /// server and occupies the NFS spindle. A non-empty `cache_key` names the
  /// data (e.g. an HDFS block id): writes populate the guest page cache,
  /// and reads of cached keys are served from RAM — this is what makes
  /// re-reads cheap and shuffle disk traffic hot, as on real guests.
  void disk_read(VmId vm, double bytes, std::function<void()> on_complete, double weight = 1.0,
                 const std::string& cache_key = {});
  void disk_write(VmId vm, double bytes, std::function<void()> on_complete, double weight = 1.0,
                  const std::string& cache_key = {});

  /// True if `cache_key` is currently resident in the VM's page cache.
  bool cached(VmId vm, const std::string& cache_key) const;
  /// Mark data as resident (e.g. after it arrived over the network).
  void cache_insert(VmId vm, const std::string& cache_key, double bytes);

  /// Write short-lived scratch data (map spills, temp files). While it fits
  /// the page cache it is a memory-speed write that Linux write-back never
  /// flushes before deletion; beyond the cache it degrades to a real
  /// (NFS-backed) disk write.
  void scratch_write(VmId vm, double bytes, std::function<void()> on_complete,
                     const std::string& cache_key, double weight = 1.0);

  /// Guest-to-guest network transfer (bridge if co-located, NIC otherwise).
  void vm_transfer(VmId src, VmId dst, double bytes, std::function<void()> on_complete,
                   double weight = 1.0);

  /// Xen credit-scheduler cap: limit the VM to `fraction` of one core per
  /// VCPU (xm sched-credit -c). 1.0 restores the full allotment. The
  /// MapReduce Tuner uses this to throttle noisy guests.
  void set_vcpu_cap(VmId vm, double fraction);
  double vcpu_cap(VmId vm) const { return vms_[vm].vcpu_cap; }

  /// One-way small-message latency between two guests.
  double message_latency(VmId src, VmId dst) const;

  // --- live migration -----------------------------------------------------
  /// Pre-copy migrate `vm` to `dst` under the given guest dirty-page
  /// behaviour. The transfer is dom0 traffic: it contends with guest flows
  /// on both NICs.
  void migrate(VmId vm, HostId dst, DirtyModel dirty,
               std::function<void(const MigrationResult&)> on_done);

  // --- introspection for the monitor --------------------------------------
  double host_cpu_utilization(HostId h) const { return model_.utilization(hosts_[h].cpu); }
  double host_cpu_busy_integral(HostId h) const { return model_.busy_integral(hosts_[h].cpu); }
  double vm_cpu_utilization(VmId v) const { return model_.utilization(vms_[v].vcpu); }
  double vm_cpu_busy_integral(VmId v) const { return model_.busy_integral(vms_[v].vcpu); }
  double vm_net_busy_integral(VmId v) const { return model_.busy_integral(vms_[v].vnic); }
  double vm_disk_busy_integral(VmId v) const { return model_.busy_integral(vms_[v].vdisk); }
  /// Peak utilization across the filer fleet (a single-rack cloud has one
  /// filer, so this is exactly the old single-spindle reading).
  double nfs_disk_utilization() const;
  /// Total busy time across all filer spindles.
  double nfs_disk_busy_integral() const;
  net::Fabric::NodeId host_node(HostId h) const { return hosts_[h].node; }
  /// The rack-0 filer (the only one on a single-rack cloud).
  net::Fabric::NodeId nfs_node() const { return nfs_nodes_.front(); }
  double host_memory_free_mb(HostId h) const;

  /// Estimated resident memory of the guest in MB (the paper's nmon
  /// samples memory alongside CPU/disk/network). Modeled as a base
  /// working set — kernel, daemons, idle JVM — plus whatever currently
  /// sits in the guest page cache, clamped to the VM's allocation. Dead
  /// guests report 0.
  double vm_memory_used_mb(VmId v) const;

  const VirtConfig& config() const { return config_; }
  net::Fabric& fabric() { return fabric_; }
  sim::Engine& engine() { return engine_; }
  sim::FluidModel& model() { return model_; }

 private:
  struct Host {
    std::string name;
    net::Fabric::NodeId node;
    sim::FluidModel::ResourceId cpu;
    double memory_used_mb = 0.0;
  };

  /// LRU page cache over named block-sized entries.
  class PageCache {
   public:
    explicit PageCache(double capacity_bytes) : capacity_(capacity_bytes) {}
    bool contains(const std::string& key) const { return entries_.contains(key); }
    void touch(const std::string& key);
    void insert(const std::string& key, double bytes);
    double used_bytes() const { return used_; }

   private:
    double capacity_;
    double used_ = 0.0;
    std::list<std::pair<std::string, double>> lru_;  // front = most recent
    std::unordered_map<std::string, std::list<std::pair<std::string, double>>::iterator>
        entries_;
  };

  struct Vm {
    std::string name;
    HostId host = 0;
    VmSpec spec;
    VmState state = VmState::Stopped;
    sim::FluidModel::ResourceId vcpu;
    sim::FluidModel::ResourceId vnic;
    sim::FluidModel::ResourceId vdisk;
    std::shared_ptr<PageCache> cache;
    double vcpu_cap = 1.0;
    bool alive = true;
  };

  struct Migration;

  net::Fabric::Endpoint vm_endpoint(VmId v) const {
    return {vms_[v].host == kOnNfs ? nfs_nodes_.front() : hosts_[vms_[v].host].node, true,
            static_cast<int>(v)};
  }

  /// The filer serving a host's virtual block devices: the single shared
  /// NFS server on a one-rack cloud, the host's rack-local filer otherwise.
  net::Fabric::NodeId filer_node(HostId h) const {
    return nfs_nodes_.size() == 1 ? nfs_nodes_.front()
                                  : nfs_nodes_[static_cast<std::size_t>(rack_of_host(h))];
  }
  sim::FluidModel::ResourceId filer_disk(HostId h) const {
    return nfs_disks_.size() == 1 ? nfs_disks_.front()
                                  : nfs_disks_[static_cast<std::size_t>(rack_of_host(h))];
  }

  void precopy_round(std::shared_ptr<Migration> mig);

  static constexpr HostId kOnNfs = static_cast<HostId>(-1);

  sim::Engine& engine_;
  sim::FluidModel& model_;
  net::Fabric& fabric_;
  VirtConfig config_;
  std::vector<Host> hosts_;
  std::vector<Vm> vms_;
  /// One NFS filer per rack (exactly one on a single-rack cloud), created
  /// before any host so resource-id order is configuration-determined.
  std::vector<net::Fabric::NodeId> nfs_nodes_;
  std::vector<sim::FluidModel::ResourceId> nfs_disks_;
  std::vector<std::function<void(VmId)>> crash_listeners_;

  obs::Counter* m_vms_booted_;
  obs::Counter* m_vms_crashed_;
  obs::Counter* m_migrations_;
  obs::Counter* m_precopy_rounds_;
  obs::Counter* m_dirtied_bytes_;
  obs::Counter* m_copied_bytes_;
  obs::Counter* m_cache_hits_;
  obs::Counter* m_cache_misses_;
  obs::Histogram* m_downtime_seconds_;
};

}  // namespace vhadoop::virt

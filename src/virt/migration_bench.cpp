#include "virt/migration_bench.hpp"

#include <stdexcept>

namespace vhadoop::virt {

void ClusterMigration::run(const std::vector<VmId>& vms, HostId dst,
                           std::function<DirtyModel(VmId)> dirty_of,
                           std::function<void(const ClusterMigrationResult&)> on_done) {
  if (vms.empty()) throw std::invalid_argument("ClusterMigration: empty VM set");
  queue_ = vms;
  next_ = 0;
  in_flight_ = 0;
  dst_ = dst;
  dirty_of_ = std::move(dirty_of);
  on_done_ = std::move(on_done);
  result_ = {};
  started_at_ = cloud_.engine().now();
  for (int i = 0; i < concurrency_ && next_ < queue_.size(); ++i) launch_next();
}

void ClusterMigration::launch_next() {
  const VmId vm = queue_[next_++];
  ++in_flight_;
  cloud_.migrate(vm, dst_, dirty_of_(vm), [this](const MigrationResult& r) {
    result_.per_vm.push_back(r);
    result_.overall_downtime += r.downtime;
    --in_flight_;
    if (next_ < queue_.size()) {
      launch_next();
    } else if (in_flight_ == 0) {
      result_.overall_migration_time = cloud_.engine().now() - started_at_;
      if (on_done_) on_done_(result_);
    }
  });
}

}  // namespace vhadoop::virt

#include "virt/cloud.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

namespace vhadoop::virt {

Cloud::Cloud(sim::Engine& engine, sim::FluidModel& model, net::Fabric& fabric, VirtConfig config)
    : engine_(engine),
      model_(model),
      fabric_(fabric),
      config_(config),
      m_vms_booted_(engine.metrics().counter("virt.vms_booted")),
      m_vms_crashed_(engine.metrics().counter("virt.vms_crashed")),
      m_migrations_(engine.metrics().counter("virt.migrations_completed")),
      m_precopy_rounds_(engine.metrics().counter("virt.precopy_rounds")),
      m_dirtied_bytes_(engine.metrics().counter("virt.dirtied_bytes")),
      m_copied_bytes_(engine.metrics().counter("virt.copied_bytes")),
      m_cache_hits_(engine.metrics().counter("virt.page_cache_hits")),
      m_cache_misses_(engine.metrics().counter("virt.page_cache_misses")),
      m_downtime_seconds_(engine.metrics().histogram(
          "virt.downtime_seconds", obs::Histogram::exponential_buckets(0.01, 2.0, 12))) {
  if (config_.nfs_disk_bw <= 0.0) {
    throw std::invalid_argument("VirtConfig: nfs_disk_bw must be > 0");
  }
  const int racks = fabric_.rack_count();
  if (racks <= 1) {
    // The paper's testbed: one shared NFS server for the whole cluster.
    nfs_nodes_.push_back(fabric_.add_node("nfs"));
    nfs_disks_.push_back(model_.add_resource("nfs.disk", config_.nfs_disk_bw));
  } else {
    // Rack-scale fabric: one filer per rack, pinned to its rack so image
    // and virtual-disk traffic stays below the (over-subscribed) ToR
    // uplinks unless a VM really reads remote data.
    for (int r = 0; r < racks; ++r) {
      const std::string name = "nfs" + std::to_string(r);
      nfs_nodes_.push_back(fabric_.add_node(name, r));
      nfs_disks_.push_back(model_.add_resource(name + ".disk", config_.nfs_disk_bw));
    }
  }
}

double Cloud::nfs_disk_utilization() const {
  double peak = 0.0;
  for (sim::FluidModel::ResourceId disk : nfs_disks_) {
    peak = std::max(peak, model_.utilization(disk));
  }
  return peak;
}

double Cloud::nfs_disk_busy_integral() const {
  double total = 0.0;
  for (sim::FluidModel::ResourceId disk : nfs_disks_) total += model_.busy_integral(disk);
  return total;
}

HostId Cloud::add_host(const std::string& name) {
  Host h;
  h.name = name;
  h.node = fabric_.add_node(name);
  h.cpu = model_.add_resource(name + ".cpu", config_.cores_per_host * config_.core_capacity);
  hosts_.push_back(h);
  return hosts_.size() - 1;
}

VmId Cloud::create_vm(const std::string& name, HostId host, VmSpec spec) {
  Host& h = hosts_.at(host);
  if (h.memory_used_mb + spec.memory_mb > config_.host_memory_mb) {
    throw std::runtime_error("create_vm: host memory oversubscribed on " + h.name);
  }
  h.memory_used_mb += spec.memory_mb;
  Vm vm;
  vm.name = name;
  vm.host = host;
  vm.spec = spec;
  vm.vcpu = model_.add_resource(name + ".vcpu", spec.vcpus * config_.core_capacity);
  // The vnic ceiling is the netfront/netback processing capacity — well
  // above wire speed, so intra-host VM pairs can exploit the bridge; wire
  // speed itself is enforced per-path by the fabric.
  vm.vnic = model_.add_resource(name + ".vnic",
                                fabric_.config().bridge_bw * fabric_.config().vm_io_efficiency);
  vm.vdisk = model_.add_resource(name + ".vdisk", config_.vdisk_bw);
  vm.cache = std::make_shared<PageCache>(config_.page_cache_mb * sim::kMiB);
  vms_.push_back(std::move(vm));
  return vms_.size() - 1;
}

void Cloud::boot_vm(VmId id, std::function<void()> on_ready) {
  Vm& vm = vms_.at(id);
  if (vm.state != VmState::Stopped) throw std::runtime_error("boot_vm: not stopped");
  vm.state = VmState::Booting;
  // Fetch the touched image blocks from the host's (rack-local) filer,
  // then run the guest boot.
  fabric_.transfer({.src = {filer_node(vm.host), false, -1},
                    .dst = {hosts_[vm.host].node, false, -1},
                    .bytes = config_.vm_boot_io_bytes,
                    .extra_resources = {filer_disk(vm.host)},
                    .on_complete = [this, id, on_ready = std::move(on_ready)]() mutable {
                      engine_.schedule_in(config_.vm_boot_seconds,
                                          [this, id, on_ready = std::move(on_ready)] {
                                            vms_[id].state = VmState::Running;
                                            m_vms_booted_->inc();
                                            if (on_ready) on_ready();
                                          });
                    }});
}

void Cloud::set_vcpu_cap(VmId id, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("set_vcpu_cap: fraction must be in (0, 1]");
  }
  Vm& vm = vms_.at(id);
  if (!alive(id)) throw std::runtime_error("set_vcpu_cap: VM not running");
  vm.vcpu_cap = fraction;
  model_.set_capacity(vm.vcpu, vm.spec.vcpus * config_.core_capacity * fraction);
}

bool Cloud::responsive(VmId id) const {
  return alive(id) && model_.capacity(vms_[id].vcpu) > 0.0;
}

void Cloud::hang_vm(VmId id) {
  Vm& vm = vms_.at(id);
  if (vm.state == VmState::Crashed || vm.state == VmState::Stopped) return;
  // Everything the guest was doing freezes: any activity that consumes one
  // of its virtual resources stalls at rate zero.
  model_.set_capacity(vm.vcpu, 0.0);
  model_.set_capacity(vm.vnic, 0.0);
  model_.set_capacity(vm.vdisk, 0.0);
}

void Cloud::crash_vm(VmId id) {
  Vm& vm = vms_.at(id);
  if (vm.state == VmState::Crashed || vm.state == VmState::Stopped) return;
  hang_vm(id);
  vm.state = VmState::Crashed;
  m_vms_crashed_->inc();
  hosts_[vm.host].memory_used_mb -= vm.spec.memory_mb;
  // Notify after the model is consistent (listeners may start traffic).
  for (const auto& listener : crash_listeners_) listener(id);
}

void Cloud::destroy_vm(VmId id) {
  Vm& vm = vms_.at(id);
  if (!vm.alive) return;
  hosts_[vm.host].memory_used_mb -= vm.spec.memory_mb;
  vm.alive = false;
  vm.state = VmState::Stopped;
}

void Cloud::run_compute(VmId id, double core_seconds, std::function<void()> on_complete,
                        double weight) {
  const Vm& vm = vms_.at(id);
  model_.start({.work = core_seconds,
                .weight = weight,
                .resources = {vm.vcpu, hosts_[vm.host].cpu},
                .on_complete = std::move(on_complete)});
}

void Cloud::PageCache::touch(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
}

void Cloud::PageCache::insert(const std::string& key, double bytes) {
  if (bytes > capacity_) return;  // would immediately self-evict
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    touch(key);
    return;
  }
  while (used_ + bytes > capacity_ && !lru_.empty()) {
    used_ -= lru_.back().second;
    entries_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, bytes);
  entries_[key] = lru_.begin();
  used_ += bytes;
}

bool Cloud::cached(VmId id, const std::string& cache_key) const {
  return !cache_key.empty() && vms_.at(id).cache->contains(cache_key);
}

void Cloud::cache_insert(VmId id, const std::string& cache_key, double bytes) {
  if (!cache_key.empty()) vms_.at(id).cache->insert(cache_key, bytes);
}

void Cloud::disk_read(VmId id, double bytes, std::function<void()> on_complete, double weight,
                      const std::string& cache_key) {
  const Vm& vm = vms_.at(id);
  if (cached(id, cache_key)) {
    // Page-cache hit: an in-RAM copy, no NFS involvement at all.
    vm.cache->touch(cache_key);
    m_cache_hits_->inc();
    model_.start({.work = bytes,
                  .weight = weight,
                  .cap = config_.cache_read_bw,
                  .on_complete = std::move(on_complete)});
    return;
  }
  if (!cache_key.empty()) {
    m_cache_misses_->inc();
    vm.cache->insert(cache_key, bytes);
  }
  // Data path: NFS spindle -> NFS NIC -> host NIC -> blkfront. The guest's
  // virtual-disk ceiling rides along as an extra resource.
  fabric_.transfer({.src = {filer_node(vm.host), false, -1},
                    .dst = {hosts_[vm.host].node, true, static_cast<int>(id)},
                    .bytes = bytes,
                    .weight = weight,
                    .extra_resources = {filer_disk(vm.host), vm.vdisk},
                    .on_complete = std::move(on_complete)});
}

void Cloud::scratch_write(VmId id, double bytes, std::function<void()> on_complete,
                          const std::string& cache_key, double weight) {
  const Vm& vm = vms_.at(id);
  if (bytes <= config_.page_cache_mb * sim::kMiB) {
    vm.cache->insert(cache_key, bytes);
    model_.start({.work = bytes,
                  .weight = weight,
                  .cap = config_.cache_read_bw,
                  .on_complete = std::move(on_complete)});
    return;
  }
  // Too large for the cache: memory pressure forces real writeback.
  disk_write(id, bytes, std::move(on_complete), weight, cache_key);
}

void Cloud::disk_write(VmId id, double bytes, std::function<void()> on_complete, double weight,
                       const std::string& cache_key) {
  const Vm& vm = vms_.at(id);
  if (!cache_key.empty()) vm.cache->insert(cache_key, bytes);
  // Write-through to NFS: dirty pages must reach the image file; charging
  // it synchronously is the conservative end of writeback behaviour.
  fabric_.transfer({.src = {hosts_[vm.host].node, true, static_cast<int>(id)},
                    .dst = {filer_node(vm.host), false, -1},
                    .bytes = bytes,
                    .weight = weight,
                    .extra_resources = {filer_disk(vm.host), vm.vdisk},
                    .on_complete = std::move(on_complete)});
}

void Cloud::vm_transfer(VmId src, VmId dst, double bytes, std::function<void()> on_complete,
                        double weight) {
  const Vm& s = vms_.at(src);
  const Vm& d = vms_.at(dst);
  net::Fabric::TransferSpec spec;
  spec.src = {hosts_[s.host].node, true, static_cast<int>(src)};
  spec.dst = {hosts_[d.host].node, true, static_cast<int>(dst)};
  spec.bytes = bytes;
  spec.weight = weight;
  if (src != dst) spec.extra_resources = {s.vnic, d.vnic};
  spec.on_complete = std::move(on_complete);
  fabric_.transfer(std::move(spec));
}

double Cloud::message_latency(VmId src, VmId dst) const {
  const Vm& s = vms_.at(src);
  const Vm& d = vms_.at(dst);
  return fabric_.message_latency({hosts_[s.host].node, true, static_cast<int>(src)},
                                 {hosts_[d.host].node, true, static_cast<int>(dst)});
}

double Cloud::host_memory_free_mb(HostId h) const {
  return config_.host_memory_mb - hosts_.at(h).memory_used_mb;
}

double Cloud::vm_memory_used_mb(VmId v) const {
  const Vm& vm = vms_.at(v);
  if (!vm.alive || vm.state == VmState::Stopped || vm.state == VmState::Crashed) return 0.0;
  // Base working set (kernel + daemons + idle JVM heap) plus whatever the
  // guest page cache currently holds — the two components nmon's MEM view
  // distinguishes on a real worker.
  const double base_mb = 0.25 * vm.spec.memory_mb;
  const double cache_mb = vm.cache ? vm.cache->used_bytes() / sim::kMiB : 0.0;
  return std::min(vm.spec.memory_mb, base_mb + cache_mb);
}

// --- live migration ---------------------------------------------------------

struct Cloud::Migration {
  VmId vm;
  HostId src;
  HostId dst;
  DirtyModel dirty;
  std::function<void(const MigrationResult&)> on_done;
  double started_at = 0.0;
  double round_started_at = 0.0;
  double remaining = 0.0;  // bytes to send this round
  int round = 0;
  double transferred = 0.0;
};

void Cloud::migrate(VmId id, HostId dst, DirtyModel dirty,
                    std::function<void(const MigrationResult&)> on_done) {
  Vm& vm = vms_.at(id);
  if (vm.state != VmState::Running) throw std::runtime_error("migrate: VM not running");
  Host& target = hosts_.at(dst);
  if (target.memory_used_mb + vm.spec.memory_mb > config_.host_memory_mb) {
    throw std::runtime_error("migrate: destination memory oversubscribed");
  }
  vm.state = VmState::Migrating;
  target.memory_used_mb += vm.spec.memory_mb;  // reserved at destination
  engine_.tracer().begin(static_cast<int>(id), kMigrationTid,
                         "migrate:" + vm.name + "->" + target.name, "virt");

  auto mig = std::make_shared<Migration>();
  mig->vm = id;
  mig->src = vm.host;
  mig->dst = dst;
  mig->dirty = dirty;
  mig->on_done = std::move(on_done);
  mig->started_at = engine_.now();
  mig->remaining = vm.spec.memory_mb * sim::kMiB;  // round 0: full RAM
  precopy_round(std::move(mig));
}

void Cloud::precopy_round(std::shared_ptr<Migration> mig) {
  mig->round_started_at = engine_.now();
  const double bytes = mig->remaining;
  mig->transferred += bytes;
  m_precopy_rounds_->inc();
  m_copied_bytes_->add(bytes);
  engine_.tracer().begin(static_cast<int>(mig->vm), kMigrationTid,
                         "precopy-" + std::to_string(mig->round), "virt");
  // Migration is a dom0-to-dom0 stream: bare-metal endpoints sharing the
  // host NICs with all guest traffic — that contention is precisely what
  // inflates migration of a loaded Hadoop cluster (paper Sec. III-C).
  fabric_.transfer(
      {.src = {hosts_[mig->src].node, false, -1},
       .dst = {hosts_[mig->dst].node, false, -1},
       .bytes = bytes,
       .weight = config_.migration_stream_weight,
       .on_complete = [this, mig] {
         const double duration = engine_.now() - mig->round_started_at;
         // Pages dirtied while this round streamed: the hot writable
         // working set is always dirty again, plus background-rate pages,
         // rounded up to page granularity.
         double dirtied = mig->dirty.wws_bytes + mig->dirty.rate * duration;
         dirtied = std::ceil(dirtied / config_.page_bytes) * config_.page_bytes;
         // The dirty set cannot exceed guest RAM.
         dirtied = std::min(dirtied, vms_[mig->vm].spec.memory_mb * sim::kMiB);
         ++mig->round;
         m_dirtied_bytes_->add(dirtied);
         engine_.tracer().end(static_cast<int>(mig->vm), kMigrationTid);

         const bool converged = dirtied <= config_.stop_copy_threshold_bytes;
         const bool gave_up = mig->round >= config_.max_precopy_rounds;
         // Xen also stops iterating when rounds stop shrinking (dirty rate
         // outpaces the link).
         const bool futile = mig->round > 2 && dirtied >= mig->remaining * 0.985;

         if (!converged && !gave_up && !futile) {
           mig->remaining = dirtied;
           precopy_round(mig);
           return;
         }

         // Stop-and-copy: the guest pauses while the final dirty set moves.
         const double final_bytes = dirtied;
         mig->transferred += final_bytes;
         m_copied_bytes_->add(final_bytes);
         const double stop_started = engine_.now();
         engine_.tracer().begin(static_cast<int>(mig->vm), kMigrationTid, "stop_and_copy",
                                "virt");
         fabric_.transfer(
             {.src = {hosts_[mig->src].node, false, -1},
              .dst = {hosts_[mig->dst].node, false, -1},
              .bytes = final_bytes,
              .on_complete = [this, mig, stop_started, final_bytes] {
                Vm& vm = vms_[mig->vm];
                hosts_[mig->src].memory_used_mb -= vm.spec.memory_mb;
                vm.host = mig->dst;
                vm.state = VmState::Running;

                MigrationResult res;
                res.vm = mig->vm;
                res.rounds = mig->round;
                res.transferred_bytes = mig->transferred;
                const double copy_time = engine_.now() - stop_started;
                // Downtime: pause + final copy + resume cost that grows
                // with the writable working set (shadow page-table rebuild
                // and post-resume faulting on a hot guest).
                const double resume_cost =
                    config_.resume_cost_per_dirty_byte * final_bytes;
                res.downtime =
                    config_.downtime_fixed_seconds + copy_time + resume_cost;
                res.migration_time = (engine_.now() - mig->started_at) +
                                     config_.downtime_fixed_seconds + resume_cost;
                m_migrations_->inc();
                m_downtime_seconds_->observe(res.downtime);
                engine_.tracer().end(static_cast<int>(mig->vm), kMigrationTid);  // stop_and_copy
                engine_.tracer().end(static_cast<int>(mig->vm), kMigrationTid);  // migrate
                if (mig->on_done) mig->on_done(res);
              }});
       }});
}

}  // namespace vhadoop::virt
